"""Experiment ``concentration``: Lemma 2's random-order concentration.

Paper claim (Lemma 2 + Appendix A.1): for a fixed subset X of a set's
edges and a fixed position window of length ℓ in a uniformly random
stream order, the number of X-edges landing in the window concentrates
— multiplicatively (statement 1), with a log-factor ceiling
(statement 2), and with additive √mean deviations (statement 3) —
each with probability ≥ 1 − 1/m²⁰.

We simulate the exact process (hypergeometric counts) across parameter
points in each statement's regime and report empirical violation
rates, which should be ~0 at laptop trial counts.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.concentration import (
    check_statement_1,
    check_statement_2,
    check_statement_3,
)
from repro.experiments.base import ExperimentReport
from repro.types import make_rng

EXPERIMENT_ID = "concentration"
TITLE = "Lemma 2: concentration of edge counts in random-order windows"
PAPER_CLAIM = (
    "Lemma 2: in random order, the number of (S, X)-edges in any fixed "
    "window of length ℓ concentrates around (ℓ/N)·|X| in three regimes"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    trials = 2000 if quick else 20000
    log_m = 14.0  # a nominal log2(m) for the statements' bounds

    rows: List[List[object]] = []
    worst_rate = 0.0

    # Statement 1 points: window <= 0.001*N, mean >= C log m.
    for stream_length, subset, window in (
        (10**6, 200_000, 1000),
        (10**6, 500_000, 800),
        (2 * 10**6, 400_000, 2000),
    ):
        check = check_statement_1(
            stream_length, subset, window, trials=trials,
            seed=rng.getrandbits(63),
        )
        worst_rate = max(worst_rate, check.violation_rate)
        rows.append(
            [
                check.statement,
                stream_length,
                subset,
                window,
                f"{check.expected_mean:.1f}",
                f"{check.observed_mean:.1f}",
                f"{check.violation_rate:.4f}",
            ]
        )

    # Statement 2 points: window <= N/2, including tiny means.
    for stream_length, subset, window in (
        (10**5, 50, 1000),      # mean 0.5: the max{.,1} branch
        (10**5, 5000, 10**4),   # mean 500
        (10**5, 100, 5 * 10**4),
    ):
        check = check_statement_2(
            stream_length, subset, window, log_m=log_m, trials=trials,
            seed=rng.getrandbits(63),
        )
        worst_rate = max(worst_rate, check.violation_rate)
        rows.append(
            [
                check.statement,
                stream_length,
                subset,
                window,
                f"{check.expected_mean:.1f}",
                f"{check.observed_mean:.1f}",
                f"{check.violation_rate:.4f}",
            ]
        )

    # Statement 3 points: window <= N/sqrt(n).
    n = 400
    for stream_length, subset, window in (
        (10**6, 100_000, 10**6 // 20),
        (10**6, 20_000, 10**6 // 25),
    ):
        check = check_statement_3(
            stream_length, subset, window, n=n, log_m=log_m, trials=trials,
            seed=rng.getrandbits(63),
        )
        worst_rate = max(worst_rate, check.violation_rate)
        rows.append(
            [
                check.statement,
                stream_length,
                subset,
                window,
                f"{check.expected_mean:.1f}",
                f"{check.observed_mean:.1f}",
                f"{check.violation_rate:.4f}",
            ]
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "statement",
            "N",
            "|X|",
            "window ℓ",
            "mean (ℓ/N)|X|",
            "observed mean",
            "violation rate",
        ],
        rows=rows,
        findings={
            "worst_violation_rate": worst_rate,  # theory: ~1/m^20 ≈ 0
            "trials_per_point": float(trials),
        },
        notes=[
            "random order ⇒ window counts are exactly hypergeometric; "
            "the simulation draws that law directly",
            "the paper proves failure probability 1/m²⁰; at these trial "
            "counts any violation at all would be surprising",
        ],
    )
