"""Experiment ``distributed-comm``: communication vs approximation.

Theorem 2 (via the full-version protocol) pins the tradeoff: ``W``
parties can deterministically achieve a ``2√(nW)``-approximation with
maximum message Õ(n) words, and the lower bound says no protocol does
much better with smaller messages.  The distributed layer lets us chart
where the practical coordinators sit relative to that frontier:

* the **chain** coordinator *is* the protocol — its cover must stay
  within ``2√(nW)·OPT`` and its max message must stay ``O(n)`` words;
* the **union** coordinator spends the fewest words and pays in cover
  size (locally necessary picks are globally redundant);
* the **greedy** coordinator uploads candidate memberships and nearly
  matches offline greedy, at the highest per-shard word cost.

Sweep W × coordinator on planted instances (by-set sharding, the
protocol's own partition) and chart total words against cover size.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate
from repro.analysis.tables import render_scatter
from repro.distributed import run_distributed
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.types import make_rng

EXPERIMENT_ID = "distributed-comm"
TITLE = "Distributed merge: communication vs approximation vs Theorem 2"
PAPER_CLAIM = (
    "Theorem 2 + full version: W-party one-way protocols trade "
    "approximation 2√(n·W) against max message Õ(n); the chain merge "
    "realises that frontier, union/greedy trade away from it"
)

_COORDINATORS = ("union", "greedy", "chain")


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 6
    n = 144
    m = 720 if quick else 2880
    opt_size = 12
    worker_values = [2, 4, 8] if quick else [2, 4, 8, 16]

    rows: List[List[object]] = []
    points = []
    chain_worst_quality = 0.0
    chain_worst_message = 0.0

    for workers in worker_values:
        for coordinator in _COORDINATORS:
            covers, totals, max_msgs = [], [], []
            for _ in range(replications):
                s = rng.getrandbits(63)
                planted = planted_partition_instance(
                    n, m, opt_size=opt_size, seed=s
                )
                result = run_distributed(
                    planted.instance,
                    workers=workers,
                    algorithm="kk",
                    strategy="by-set",
                    coordinator=coordinator,
                    seed=s,
                )
                result.verify(planted.instance)
                covers.append(float(result.cover_size))
                totals.append(float(result.total_comm_words))
                max_msgs.append(float(result.max_message_words))
                if coordinator == "chain":
                    bound = 2 * math.sqrt(n * workers) * planted.opt_upper_bound
                    chain_worst_quality = max(
                        chain_worst_quality, result.cover_size / bound
                    )
                    chain_worst_message = max(
                        chain_worst_message, result.max_message_words / n
                    )
            cover = aggregate(covers)
            total = aggregate(totals)
            max_msg = aggregate(max_msgs)
            rows.append(
                [
                    workers,
                    coordinator,
                    str(cover),
                    str(total),
                    str(max_msg),
                    f"{2 * math.sqrt(n * workers) * opt_size:.0f}",
                ]
            )
            points.append((f"{coordinator[0]}{workers}", total.mean, cover.mean))

    chart = render_scatter(
        points,
        x_label="total comm words (mean)",
        y_label="cover size (mean)",
        title="comm-vs-approximation (u=union, g=greedy, c=chain; digit=W):",
    )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "W",
            "coordinator",
            "cover",
            "total words",
            "max message (words)",
            "2√(nW)·OPT bound",
        ],
        rows=rows,
        extra_text=chart,
        findings={
            "chain_worst_cover_over_bound": chain_worst_quality,  # <= 1
            "chain_worst_message_over_n": chain_worst_message,  # O(1)
        },
        notes=[
            "chain cover / 2√(nW)·OPT ≤ 1 everywhere: the distributed "
            "chain merge inherits the protocol's guarantee",
            "union sends the fewest words and the largest covers; greedy "
            "buys near-offline quality with candidate-membership uploads "
            "— the two sides of the Theorem 2 tradeoff",
        ],
    )
