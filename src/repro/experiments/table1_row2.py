"""Experiment ``table1-row2``: the KK-algorithm (Theorem 1).

Paper claim (Table 1 row 2 / Theorem 1): in adversarial order the
KK-algorithm is an Õ(√n)-approximation using Õ(m) space.

We verify two scalings:

* **space vs m** at fixed n — peak words should grow linearly in m
  (fitted exponent ≈ 1), because a counter is kept per set;
* **ratio vs n** at fixed planted OPT — the cover should grow like
  √n·polylog (normalised ratio ``ratio/√n`` stays bounded).
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate, fit_power_law
from repro.core.kk import KKAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "table1-row2"
TITLE = "KK-algorithm: Õ(√n)-approx with Õ(m) space, adversarial order"
PAPER_CLAIM = (
    "Theorem 1 [19]: randomized one-pass Õ(√n)-approximation with "
    "space Õ(m) for edge-arrival Set Cover"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 5

    if quick:
        m_values = [500, 1000, 2000]
        n_values = [64, 144, 256]
    else:
        m_values = [1000, 2000, 4000, 8000, 16000]
        n_values = [64, 144, 256, 576, 1024]

    rows: List[List[object]] = []

    # Sweep 1: space vs m at fixed n.
    n_fixed = 100
    space_means: List[float] = []
    for m in m_values:
        peaks, ratios = [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            planted = planted_partition_instance(
                n_fixed, m, opt_size=10, seed=s
            )
            stream = ReplayableStream(
                planted.instance, RoundRobinInterleaveOrder(seed=s)
            )
            result = KKAlgorithm(seed=s).run(stream.fresh())
            result.verify(planted.instance)
            peaks.append(result.space.peak_words)
            ratios.append(result.cover_size / planted.opt_upper_bound)
        space = aggregate(peaks)
        space_means.append(space.mean)
        rows.append(
            ["space-vs-m", n_fixed, m, str(space), str(aggregate(ratios))]
        )
    space_exponent, _ = fit_power_law([float(m) for m in m_values], space_means)

    # Sweep 2: ratio vs n at fixed OPT.
    ratio_means: List[float] = []
    for n in n_values:
        m = 8 * n
        peaks, ratios = [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            planted = planted_partition_instance(n, m, opt_size=8, seed=s)
            stream = ReplayableStream(
                planted.instance, RoundRobinInterleaveOrder(seed=s)
            )
            result = KKAlgorithm(seed=s).run(stream.fresh())
            result.verify(planted.instance)
            peaks.append(result.space.peak_words)
            ratios.append(result.cover_size / planted.opt_upper_bound)
        ratio = aggregate(ratios)
        ratio_means.append(ratio.mean)
        rows.append(
            ["ratio-vs-n", n, m, str(aggregate(peaks)), str(ratio)]
        )
    ratio_exponent, _ = fit_power_law([float(n) for n in n_values], ratio_means)
    normalized = [
        r / math.sqrt(n) for r, n in zip(ratio_means, n_values)
    ]

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["sweep", "n", "m", "peak words", "ratio vs OPT"],
        rows=rows,
        findings={
            "space_vs_m_exponent": space_exponent,  # theory: ~1
            "ratio_vs_n_exponent": ratio_exponent,  # info only (≤ 0.5)
            "max_normalized_ratio": max(normalized),  # theory: O(polylog)
        },
        notes=[
            "space exponent ~1 confirms Θ̃(m) space (a counter per set)",
            "Theorem 1 is an upper bound: ratio/√n stays bounded "
            "(max_normalized_ratio); the growth exponent may be below "
            "0.5 on instances easier than the worst case",
        ],
    )
