"""Experiment ``table1-row1``: the α = o(√n) regime (Table 1 row 1).

Paper claim (Table 1 row 1, [4] + [19] appendix): for α = o(√n),
Θ̃(m·n/α) space is necessary and sufficient for α-approximation in
adversarial order, and the element-sampling upper bound runs in the
edge-arrival model.

Sweep α below √n: the stored-projection space should shrink like 1/α
(fitted exponent ≈ −1) while the cover stays within α·OPT.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate, fit_power_law
from repro.core.element_sampling import ElementSamplingAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "table1-row1"
TITLE = "Element sampling: α-approx with Θ̃(m·n/α) space, α = o(√n)"
PAPER_CLAIM = (
    "Table 1 row 1 ([4], edge-arrival per [19] appendix): for "
    "α = o(√n), space Θ̃(m·n/α) is necessary and sufficient"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 6

    n = 400 if quick else 1024
    m = 4000 if quick else 16384
    opt_size = 20 if quick else 32
    sqrt_n = math.sqrt(n)
    # The asymptotic regime is α = o(√n); at laptop scale log m ≈ √n so
    # the sweep necessarily brackets √n.  With C = 1/2 the sampling
    # engages (p < 1) from α ≈ 0.5·log m upward, putting most of the
    # sweep at or below √n; the 1/α space exponent is the row's content.
    sample_constant = 0.5
    log_m = math.log2(m)
    alphas = [0.75 * log_m, 1.5 * log_m, 3 * log_m]

    rows: List[List[object]] = []
    space_means: List[float] = []
    cover_means: List[float] = []
    worst_ratio_over_alpha = 0.0

    for alpha in alphas:
        projections, covers, ratios = [], [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            planted = planted_partition_instance(n, m, opt_size, seed=s)
            stream = ReplayableStream(
                planted.instance, RoundRobinInterleaveOrder(seed=s)
            )
            algorithm = ElementSamplingAlgorithm(
                alpha=alpha, sample_constant=sample_constant, seed=s
            )
            result = algorithm.run(stream.fresh())
            result.verify(planted.instance)
            projections.append(
                max(1.0, float(result.space.peak_of("projections")))
            )
            covers.append(float(result.cover_size))
            ratios.append(
                result.cover_size / planted.opt_upper_bound / alpha
            )
        space = aggregate(projections)
        cover = aggregate(covers)
        space_means.append(space.mean)
        cover_means.append(cover.mean)
        worst_ratio_over_alpha = max(worst_ratio_over_alpha, max(ratios))
        rows.append(
            [
                f"{alpha:.0f}",
                f"{alpha / sqrt_n:.2f}·√n",
                str(space),
                str(cover),
                f"{max(ratios):.2f}",
            ]
        )

    space_exponent, _ = fit_power_law(alphas, space_means)
    cover_exponent, _ = fit_power_law(alphas, cover_means)

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "alpha",
            "alpha/√n",
            "projection words",
            "cover",
            "ratio/(alpha·OPT)",
        ],
        rows=rows,
        findings={
            "projection_vs_alpha_exponent": space_exponent,  # theory: ~-1
            "cover_vs_alpha_exponent": cover_exponent,  # grows with alpha
            "worst_cover_over_alpha_opt": worst_ratio_over_alpha,  # <= O(1)
        },
        notes=[
            "stored projections scale like m·n·log m/α: the Θ̃(m·n/α) "
            "row-1 space bound, measured as the 1/α exponent",
            "cover stays within ~α·OPT: the tradeoff that makes small α "
            "expensive in space and large α cheap",
        ],
    )
