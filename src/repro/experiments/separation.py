"""Experiment ``separation``: adversarial vs random order.

Paper claim (Theorems 2 + 3 juxtaposed): Õ(√n)-approximation requires
Ω̃(m) space in adversarial order but only Õ(m/√n) in random order — a
strong separation between the two arrival models.

On identical m = Θ(n²) instances we measure:

* Algorithm 1 (random order) vs the KK-algorithm (adversarial-capable):
  comparable cover quality, space smaller by a factor growing with √n;
* Algorithm 1 run on adversarially ordered streams of the same
  instance, for context: its Õ(√n) guarantee only holds under random
  order (Theorem 2 says *no* algorithm can keep it in o(m) space
  adversarially) — the measured cover under a specific adversarial
  heuristic may be better or worse, but carries no guarantee.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate
from repro.baselines.greedy import greedy_cover_size
from repro.core.kk import KKAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import RandomOrder, RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "separation"
TITLE = "Random vs adversarial order: the space separation"
PAPER_CLAIM = (
    "Theorem 2 + Theorem 3: Õ(√n)-approx needs Ω̃(m) space adversarially "
    "but only Õ(m/√n) space in random order"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 4
    n_values = [64, 144, 256] if quick else [64, 144, 256, 484]

    rows: List[List[object]] = []
    advantages: List[float] = []
    degradations: List[float] = []

    for n in n_values:
        instance = quadratic_family(n, density=0.5, seed=rng.getrandbits(63))
        baseline = greedy_cover_size(instance)
        adv: List[float] = []
        ro_random_cover: List[float] = []
        ro_adversarial_cover: List[float] = []
        for _ in range(replications):
            s = rng.getrandbits(63)
            random_stream = ReplayableStream(instance, RandomOrder(seed=s))
            adversarial_stream = ReplayableStream(
                instance, RoundRobinInterleaveOrder(seed=s)
            )
            ro = RandomOrderAlgorithm(seed=s).run(random_stream.fresh())
            kk = KKAlgorithm(seed=s).run(random_stream.fresh())
            ro_adv = RandomOrderAlgorithm(seed=s).run(
                adversarial_stream.fresh()
            )
            for result in (ro, kk, ro_adv):
                result.verify(instance)
            adv.append(kk.space.peak_words / max(1, ro.space.peak_words))
            ro_random_cover.append(float(ro.cover_size))
            ro_adversarial_cover.append(float(ro_adv.cover_size))
        advantage = aggregate(adv)
        random_cover = aggregate(ro_random_cover)
        adversarial_cover = aggregate(ro_adversarial_cover)
        advantages.append(advantage.mean)
        degradations.append(adversarial_cover.mean / random_cover.mean)
        rows.append(
            [
                n,
                instance.m,
                str(advantage),
                f"{math.sqrt(n):.1f}",
                str(random_cover),
                str(adversarial_cover),
                baseline,
            ]
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "n",
            "m",
            "KK/Alg1 space",
            "√n",
            "Alg1 cover (random)",
            "Alg1 cover (adversarial)",
            "greedy",
        ],
        rows=rows,
        findings={
            "space_advantage_at_max_n": advantages[-1],
            "space_advantage_growth": advantages[-1] / advantages[0],
            "adversarial_cover_ratio_at_max_n": degradations[-1],
        },
        notes=[
            "the KK/Alg1 space ratio tracks √n — the separation's size",
            "the adversarial-order column is context only: Theorem 3's "
            "guarantee needs random order, and Theorem 2 proves no "
            "algorithm can match it in o(m) space adversarially; a "
            "particular heuristic ordering may land above or below the "
            "random-order cover, with no guarantee either way",
        ],
    )
