"""Experiment ``phase-transition``: the approximation/space tradeoff map.

Paper context (Section 1): edge-arrival Set Cover undergoes a phase
transition at α = Θ̃(√n) — below it, Θ̃(m·n/α) space is necessary and
sufficient [4]; at it, Θ̃(m) (KK + Theorem 2); above it, Õ(m·n/α²)
(Theorem 4).  We chart every implemented algorithm on one instance
family as (space, cover) points and check the ordering the theory
predicts.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.analysis.metrics import aggregate
from repro.baselines.store_all import StoreAllAlgorithm
from repro.baselines.trivial import FirstFitAlgorithm, UniformSampleAlgorithm
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.kk import KKAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "phase-transition"
TITLE = "Approximation vs space across the algorithm spectrum"
PAPER_CLAIM = (
    "Section 1: the space/approximation landscape — Θ̃(m·n/α) below "
    "√n, Θ̃(m) at Θ̃(√n) (adversarial), Õ(m·n/α²) above, Õ(m/√n) at "
    "Θ̃(√n) (random order)"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 5
    n = 144 if quick else 400
    instance = quadratic_family(n, density=0.5, seed=rng.getrandbits(63))
    sqrt_n = math.sqrt(n)

    algorithms: Dict[str, Callable[[int], object]] = {
        "store-all (ceiling)": lambda s: StoreAllAlgorithm(seed=s),
        "kk (Thm 1)": lambda s: KKAlgorithm(seed=s),
        "alg2 alpha=2√n (Thm 4)": lambda s: LowSpaceAdversarialAlgorithm(
            alpha=2 * sqrt_n, seed=s
        ),
        "alg2 alpha=8√n (Thm 4)": lambda s: LowSpaceAdversarialAlgorithm(
            alpha=8 * sqrt_n, seed=s
        ),
        "alg1 random-order (Thm 3)": lambda s: RandomOrderAlgorithm(seed=s),
        "uniform-sample (ablation)": lambda s: UniformSampleAlgorithm(
            rate=sqrt_n * math.log2(instance.m) / instance.m, seed=s
        ),
        "first-fit (floor)": lambda s: FirstFitAlgorithm(seed=s),
    }

    measured: Dict[str, Dict[str, float]] = {}
    rows: List[List[object]] = []
    for name, factory in algorithms.items():
        peaks, covers = [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            stream = ReplayableStream(instance, RandomOrder(seed=s))
            result = factory(s).run(stream.fresh())
            result.verify(instance)
            peaks.append(float(result.space.peak_words))
            covers.append(float(result.cover_size))
        space = aggregate(peaks)
        cover = aggregate(covers)
        measured[name] = {"space": space.mean, "cover": cover.mean}
        rows.append([name, str(space), str(cover)])

    rows.sort(key=lambda row: -measured[row[0]]["space"])

    from repro.analysis.tables import render_scatter

    chart = render_scatter(
        [
            (name, stats["space"], stats["cover"])
            for name, stats in measured.items()
        ],
        x_label="peak words",
        y_label="cover size",
        title="space/approximation tradeoff map:",
    )

    kk_space = measured["kk (Thm 1)"]["space"]
    alg1_space = measured["alg1 random-order (Thm 3)"]["space"]
    alg2_space = measured["alg2 alpha=2√n (Thm 4)"]["space"]
    alg2_big_space = measured["alg2 alpha=8√n (Thm 4)"]["space"]
    store_space = measured["store-all (ceiling)"]["space"]

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["algorithm", "peak words", "cover"],
        rows=rows,
        extra_text=chart,
        findings={
            # Ordering predicted by the theory (all should be > 1):
            "store_over_kk_space": store_space / kk_space,
            "kk_over_alg1_space": kk_space / alg1_space,
            "kk_over_alg2_space": kk_space / alg2_space,
            "alg2_small_over_big_alpha_space": alg2_space / alg2_big_space,
            "first_fit_cover_over_kk_cover": (
                measured["first-fit (floor)"]["cover"]
                / measured["kk (Thm 1)"]["cover"]
            ),
        },
        notes=[
            "space ordering store-all > KK > {Alg2, Alg1} with Alg2 "
            "shrinking as α grows: the Table-1 landscape on one chart",
            "quality ordering is the mirror image: cheaper space buys "
            "larger covers",
        ],
    )
