"""Common experiment-report plumbing.

Every experiment module exposes::

    EXPERIMENT_ID: str          # e.g. "table1-row2"
    TITLE: str
    PAPER_CLAIM: str            # the sentence from the paper being tested
    def run(quick: bool = True, seed: int = 0) -> ExperimentReport

``quick=True`` (used by tests and pytest-benchmark) runs reduced grids
in seconds; ``quick=False`` (the CLI default for report generation)
runs the full grids behind EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.tables import render_kv, render_table


@dataclass
class ExperimentReport:
    """The rendered outcome of one experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: List[str]
    rows: List[List[object]]
    findings: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    extra_text: str = ""

    def render(self, markdown: bool = False) -> str:
        """Human-readable report: claim, table, chart, findings, notes."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            "",
            render_table(self.headers, self.rows, markdown=markdown),
        ]
        if self.extra_text:
            parts.append("")
            parts.append(self.extra_text)
        if self.findings:
            parts.append("")
            parts.append(
                render_kv(sorted(self.findings.items()), title="findings:")
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
