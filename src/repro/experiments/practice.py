"""Experiment ``practice``: streaming vs greedy on practical workloads.

Paper context (Section 1.3, citing [5, 11, 21]): on practical inputs,
streaming set-cover algorithms produce covers only modestly larger than
offline greedy while using far less memory, and lazy greedy matches
plain greedy with far fewer gain evaluations.

We measure on heavy-tailed (Zipf), blog-watch, and dominating-set
workloads.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import aggregate
from repro.baselines.greedy import greedy_cover
from repro.baselines.lazy_greedy import lazy_greedy_cover
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.kk import KKAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.dominating_set import preferential_attachment_dominating_set
from repro.generators.zipf import blogwatch_instance, zipf_instance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "practice"
TITLE = "Streaming vs greedy on practical workloads"
PAPER_CLAIM = (
    "Section 1.3 [5]: streaming algorithms produce only slightly larger "
    "covers than Greedy in practice, using substantially less memory"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 4
    scale = 1 if quick else 3

    workloads = [
        (
            "zipf",
            lambda s: zipf_instance(300 * scale, 1500 * scale, seed=s),
        ),
        (
            "blogwatch",
            lambda s: blogwatch_instance(
                200 * scale, 1000 * scale, posts_per_blog=25, seed=s
            ),
        ),
        (
            "scale-free-domset",
            lambda s: preferential_attachment_dominating_set(
                400 * scale, attach=3, seed=s
            ),
        ),
    ]

    rows: List[List[object]] = []
    blowups: List[float] = []
    savings: List[float] = []
    lazy_speedups: List[float] = []

    for name, make_instance in workloads:
        greedy_sizes, kk_sizes, kk_spaces, input_sizes = [], [], [], []
        lazy_ratios = []
        for _ in range(replications):
            s = rng.getrandbits(63)
            instance = make_instance(s)
            greedy = greedy_cover(instance)
            lazy = lazy_greedy_cover(instance)
            stream = ReplayableStream(instance, RandomOrder(seed=s))
            kk = KKAlgorithm(seed=s).run(stream.fresh())
            kk.verify(instance)
            greedy_sizes.append(float(greedy.cover_size))
            kk_sizes.append(float(kk.cover_size))
            kk_spaces.append(float(kk.space.peak_words))
            input_sizes.append(float(instance.num_edges))
            # Plain greedy evaluates m gains per pick; lazy far fewer.
            plain_evals = instance.m * greedy.cover_size
            lazy_ratios.append(
                plain_evals / max(1.0, lazy.diagnostics["gain_evaluations"])
            )
        blowup = aggregate(kk_sizes).mean / aggregate(greedy_sizes).mean
        saving = aggregate(input_sizes).mean / aggregate(kk_spaces).mean
        lazy_speedup = aggregate(lazy_ratios).mean
        blowups.append(blowup)
        savings.append(saving)
        lazy_speedups.append(lazy_speedup)
        rows.append(
            [
                name,
                str(aggregate(greedy_sizes)),
                str(aggregate(kk_sizes)),
                f"{blowup:.2f}x",
                f"{saving:.1f}x",
                f"{lazy_speedup:.0f}x",
            ]
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "workload",
            "greedy cover",
            "KK cover",
            "cover blowup",
            "memory saving vs input",
            "lazy-greedy eval saving",
        ],
        rows=rows,
        findings={
            "max_cover_blowup": max(blowups),
            "min_memory_saving": min(savings),
            "min_lazy_speedup": min(lazy_speedups),
        },
        notes=[
            "cover blowup is the 'slightly larger covers' of [5]; memory "
            "saving compares streaming state to the buffered input",
            "lazy greedy returns greedy-identical covers with orders of "
            "magnitude fewer gain evaluations ([11, 21])",
        ],
    )
