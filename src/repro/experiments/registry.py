"""Registry mapping experiment ids to their modules.

``get_experiment("table1-row2").run(quick=False)`` regenerates any
artifact; ``all_experiment_ids()`` drives the CLI and the benchmark
suite.
"""

from __future__ import annotations

from types import ModuleType
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.experiments import (
    async_completion,
    concentration,
    distributed_tradeoff,
    invariants,
    length_oblivious,
    lb_family,
    lb_reduction,
    merge_latency,
    multipass,
    order_robustness,
    phase_transition,
    practice,
    separation,
    set_arrival_baseline,
    simple_protocol_exp,
    table1_row1,
    table1_row2,
    table1_row3,
    table1_row4,
    words_vs_bytes,
)

_REGISTRY: Dict[str, ModuleType] = {
    module.EXPERIMENT_ID: module
    for module in (
        table1_row1,
        table1_row2,
        table1_row3,
        table1_row4,
        set_arrival_baseline,
        separation,
        lb_family,
        lb_reduction,
        simple_protocol_exp,
        distributed_tradeoff,
        async_completion,
        merge_latency,
        phase_transition,
        length_oblivious,
        concentration,
        multipass,
        order_robustness,
        practice,
        invariants,
        words_vs_bytes,
    )
}


def all_experiment_ids() -> List[str]:
    """All registered experiment ids, in Table-1-then-extras order."""
    return list(_REGISTRY)


def get_experiment(experiment_id: str) -> ModuleType:
    """The module for ``experiment_id`` (exposes ``run``/``TITLE``/...)."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
