"""Experiment ``words-vs-bytes``: metered words vs measured wire bytes.

Theorem 2's communication bounds are stated in idealised machine
*words*; the transport layer serializes every coordinator message and
counts the *bytes* that actually cross a wire.  This experiment runs
each coordinator over every available transport and puts the two
currencies side by side:

* **parity** — covers, certificates, and comm reports are identical
  across transports (the wire never changes what is computed);
* **honesty** — measured bytes ≥ 8 × metered words on every run and
  every link, because each word travels as one big-endian int64;
* **overhead** — the bytes/word ratio stays a small constant (framing
  plus codec structure), so the word counts the theorems use are a
  faithful proxy for physical communication, not an undercount.

The socket transport is exercised when the sandbox allows binding a
localhost listener and skipped (with a note) otherwise.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import aggregate
from repro.distributed import run_distributed
from repro.distributed.transport import (
    SocketTransport,
    make_transport,
    registered_transports,
)
from repro.errors import TransportError
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.types import make_rng

EXPERIMENT_ID = "words-vs-bytes"
TITLE = "Metered words vs measured wire bytes across transports"
PAPER_CLAIM = (
    "the word counts the communication bounds are stated in are a "
    "faithful proxy for physical bytes: every transport carries "
    "identical covers and comm reports, measured bytes are at least "
    "8x the metered words (one int64 per word), and the bytes/word "
    "overhead is a small framing constant"
)

_COORDINATORS = ("union", "greedy", "chain")


def _transport_for(name: str):
    """A transport instance, or ``None`` where the sandbox forbids it."""
    if name == "socket":
        try:
            return SocketTransport()
        except TransportError:
            return None
    return make_transport(name)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 5
    n = 80 if quick else 160
    m = 240 if quick else 800
    workers = 4 if quick else 8

    rows: List[List[object]] = []
    parity_cells = 0
    socket_skipped = False
    min_overhead = float("inf")
    max_overhead = 0.0

    for coordinator in _COORDINATORS:
        ratios_by_transport: Dict[str, List[float]] = {}
        for _ in range(replications):
            s = rng.getrandbits(63)
            planted = planted_partition_instance(
                n, m, opt_size=workers * 2, seed=s
            )
            baseline = None
            for name in registered_transports():
                transport = _transport_for(name)
                if transport is None:
                    socket_skipped = True
                    continue
                result = run_distributed(
                    planted.instance,
                    workers=workers,
                    coordinator=coordinator,
                    seed=s,
                    transport=transport,
                )
                result.verify(planted.instance)
                if baseline is None:
                    baseline = result
                else:
                    assert result == baseline, (
                        f"transport parity broken: {coordinator}/{name}"
                    )
                    assert result.comm == baseline.comm
                    parity_cells += 1
                wire = result.transport
                words = result.comm.total_words
                assert wire.total_bytes >= 8 * words, (
                    f"wire undercounts words: {coordinator}/{name}"
                )
                assert wire.per_link_frames == result.comm.per_link_messages
                ratios_by_transport.setdefault(name, []).append(
                    wire.overhead_ratio
                )
                min_overhead = min(min_overhead, wire.overhead_ratio)
                max_overhead = max(max_overhead, wire.overhead_ratio)
        for name, ratios in sorted(ratios_by_transport.items()):
            agg = aggregate(ratios)
            rows.append([coordinator, name, len(ratios), str(agg)])

    notes = [
        "every transport produced byte-identical covers, certificates, "
        "and comm reports — the wire is on the data path but never in "
        "the result",
        f"bytes/word overhead stayed in [{min_overhead:.3f}, "
        f"{max_overhead:.3f}]: >= 1 structurally (one int64 per word) "
        "and bounded by a small framing/codec constant",
    ]
    if socket_skipped:
        notes.append(
            "socket transport skipped: this sandbox forbids binding a "
            "localhost listener"
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["coordinator", "transport", "runs", "bytes/word overhead"],
        rows=rows,
        findings={
            "min_overhead_ratio": min_overhead,
            "max_overhead_ratio": max_overhead,
            "parity_cells_checked": float(parity_cells),
            "socket_exercised": 0.0 if socket_skipped else 1.0,
        },
        notes=notes,
    )
