"""Experiment ``order-robustness``: how much randomness does Thm 3 need?

Paper context (Section 6 open problems; Section 1 motivation that
"in practice, data rarely arrives in the worst possible order"):
Theorem 3 assumes a uniformly random arrival order.  This experiment
interpolates between an adversarially spread order and a shuffled one
via :class:`~repro.streaming.orders.LocallyShuffledOrder` and measures
Algorithm 1's cover quality along the way — an empirical probe of how
fragile the random-order assumption is, beyond what the paper proves.

This is an *extension* experiment: the paper makes no quantitative
claim here, so the findings are descriptive (monotone-ish improvement
with randomness) rather than a pass/fail reproduction.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import aggregate
from repro.baselines.greedy import greedy_cover_size
from repro.core.random_order import RandomOrderAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import LocallyShuffledOrder, RandomOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "order-robustness"
TITLE = "Semi-random orders: Algorithm 1 between adversarial and random"
PAPER_CLAIM = (
    "extension of §6's open problems: Theorem 3 assumes uniform order; "
    "we measure Algorithm 1 on orders with tunable local randomness"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 6
    n = 144 if quick else 256
    randomness_levels = [0.0, 0.01, 0.1, 0.5, 1.0]

    instance = quadratic_family(n, density=0.5, seed=rng.getrandbits(63))
    baseline = greedy_cover_size(instance)

    rows: List[List[object]] = []
    means: List[float] = []
    for randomness in randomness_levels:
        covers, spaces = [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            order = LocallyShuffledOrder(randomness, seed=s)
            stream = ReplayableStream(instance, order)
            result = RandomOrderAlgorithm(seed=s).run(stream.fresh())
            result.verify(instance)
            covers.append(float(result.cover_size))
            spaces.append(float(result.space.peak_words))
        cover = aggregate(covers)
        means.append(cover.mean)
        rows.append(
            [
                f"{randomness:.2f}",
                str(cover),
                f"{cover.mean / baseline:.2f}x",
                str(aggregate(spaces)),
            ]
        )

    # Reference: the fully uniform order of Theorem 3.
    covers = []
    for _ in range(replications):
        s = rng.getrandbits(63)
        stream = ReplayableStream(instance, RandomOrder(seed=s))
        result = RandomOrderAlgorithm(seed=s).run(stream.fresh())
        result.verify(instance)
        covers.append(float(result.cover_size))
    uniform = aggregate(covers)
    rows.append(
        ["uniform (Thm 3)", str(uniform), f"{uniform.mean / baseline:.2f}x", "-"]
    )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "randomness",
            "Alg1 cover",
            "vs greedy",
            "peak words",
        ],
        rows=rows,
        findings={
            "adversarial_over_uniform_cover": means[0] / uniform.mean,
            "full_shuffle_over_uniform_cover": means[-1] / uniform.mean,
            "greedy_baseline": float(baseline),
        },
        notes=[
            "full window shuffle (randomness 1.0) tracks the uniform "
            "reference; small windows already recover much of it — the "
            "statistical signals Algorithm 1 reads are fairly local",
            "descriptive extension: the paper proves Theorem 3 only for "
            "uniform order and conjectures Õ(m/√n) is optimal there",
        ],
    )
