"""Per-experiment modules regenerating the paper's tables and claims.

See DESIGN.md's experiment index for the mapping from paper artifact
(Table-1 row, theorem, lemma) to experiment id.  Import the registry
lazily to avoid import cycles::

    from repro.experiments.registry import get_experiment
    report = get_experiment("table1-row4").run(quick=True)
    print(report.render())
"""

from repro.experiments.base import ExperimentReport

__all__ = ["ExperimentReport"]
