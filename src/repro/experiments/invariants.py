"""Experiment ``invariants``: Algorithm 1's (I1)/(I2)/(I3) probes.

Paper claims (Section 4.2 and appendix):

* **(I3)** (Lemma 9): per inner algorithm A(i), only Õ(√n·log²m) sets
  join Sol.
* **(I2)** (Lemma 4): each set added during A(i) has only Õ(√n·log⁹m)
  *missed edges* (edges that arrived before the set's inclusion).
* **Lemma 8**: the number of special sets in epoch j is ≤ 1.1·m/2ʲ —
  i.e. special-set counts decay geometrically across epochs.
* **Lemma 7**: uncovered elements are (almost) never optimistically
  marked.

We run the instrumented Algorithm 1 on a two-tier workload whose inner
machinery is active and measure each quantity directly; missed edges
are counted post-hoc from the frozen stream and the probe's recorded
inclusion positions.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.metrics import aggregate, geometric_decay_rate
from repro.core.random_order import RandomOrderAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.random_instances import two_tier_instance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "invariants"
TITLE = "Algorithm 1 invariants: special-set decay, missed edges, additions"
PAPER_CLAIM = (
    "(I2): Õ(√n) missed edges per included set; (I3): Õ(√n·log²m) "
    "additions per A(i); Lemma 8: ≤ 1.1·m/2ʲ special sets in epoch j; "
    "Lemma 7: uncovered elements stay unmarked"
)


def count_missed_edges(stream_edges, inclusion_positions) -> Dict[int, int]:
    """Missed edges per solution set, from the frozen stream.

    An edge (S, x) is *missed* if it arrived strictly before S joined
    Sol (position recorded by the probe); epoch-0 sets (position 0)
    miss nothing by definition.
    """
    missed: Dict[int, int] = {
        s: 0 for s, pos in inclusion_positions.items() if pos > 0
    }
    for position, (set_id, _element) in enumerate(stream_edges):
        inclusion = inclusion_positions.get(set_id)
        if inclusion is not None and 0 < inclusion and position < inclusion:
            missed[set_id] += 1
    return missed


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 5
    n = 2500 if quick else 10000
    num_small = 20000 if quick else 100000
    num_big = 60 if quick else 120

    rows: List[List[object]] = []
    decay_rates: List[float] = []
    additions_norm: List[float] = []
    missed_norm: List[float] = []
    marked_uncovered: List[float] = []

    for rep in range(replications):
        s = rng.getrandbits(63)
        instance = two_tier_instance(
            n, num_small=num_small, num_big=num_big, seed=s
        )
        stream = ReplayableStream(instance, RandomOrder(seed=s))
        algorithm = RandomOrderAlgorithm(seed=s)
        result = algorithm.run(stream.fresh())
        result.verify(instance)
        probe = algorithm.last_probe
        assert probe is not None

        # Lemma 8: specials per epoch within each A(i) should decay.
        num_algorithms = int(result.diagnostics["num_algorithms"])
        for i in range(1, num_algorithms + 1):
            counts = probe.special_counts_by_epoch(i)
            rate = geometric_decay_rate([float(c) for c in counts])
            if rate is not None:
                decay_rates.append(rate)
            rows.append(
                [rep, f"A({i}) specials/epoch", " ".join(map(str, counts))]
            )

        # (I3): additions per A(i), normalised by √n·log²m.
        log_m = max(1.0, math.log2(instance.m))
        bound = math.sqrt(n) * log_m**2
        for i, total in sorted(probe.additions_per_algorithm().items()):
            additions_norm.append(total / bound)
            rows.append([rep, f"A({i}) additions", total])

        # (I2): missed edges per included set, normalised by √n·log m.
        missed = count_missed_edges(stream.edges(), probe.inclusion_positions)
        if missed:
            worst = max(missed.values())
            missed_norm.append(worst / (math.sqrt(n) * log_m))
            rows.append([rep, "worst missed edges", worst])

        # Lemma 7: marked-but-uncovered elements at the end.
        marked_uncovered.append(
            result.diagnostics["marked_uncovered_at_end"] / n
        )
        rows.append(
            [
                rep,
                "marked-uncovered frac",
                f"{marked_uncovered[-1]:.4f}",
            ]
        )

    findings = {
        "mean_special_decay_rate": (
            aggregate(decay_rates).mean if decay_rates else 0.0
        ),  # Lemma 8 predicts <= ~0.55 asymptotically; any value < 1 decays
        "max_additions_over_sqrtn_log2m": (
            max(additions_norm) if additions_norm else 0.0
        ),  # (I3): should be O(1)
        "max_missed_over_sqrtn_logm": (
            max(missed_norm) if missed_norm else 0.0
        ),  # (I2): should be O(polylog)
        "max_marked_uncovered_fraction": max(marked_uncovered),  # Lemma 7: ~0
    }

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["rep", "probe", "value"],
        rows=rows,
        findings=findings,
        notes=[
            "special counts per epoch decaying (rate < 1) is Lemma 8's "
            "geometric-decrease mechanism at laptop scale",
            "missed edges stay Õ(√n) per included set (I2); additions per "
            "A(i) stay Õ(√n·log²m) (I3); optimistically marked elements "
            "are eventually covered (Lemma 7)",
        ],
    )
