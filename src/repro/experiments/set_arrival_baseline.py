"""Experiment ``set-arrival-baseline``: the set-arrival context.

Paper context (Section 1, [4, 10, 13]): in the *set-arrival* model a
one-pass Θ(√n)-approximation needs only Õ(n) space — independent of m.
Edge arrival breaks this: Theorem 2 shows Ω̃(m) space is needed for the
same quality.  This experiment demonstrates the set-arrival baseline's
properties and why it cannot run outside its model:

* space of the threshold-greedy baseline is flat in m (fitted exponent
  ≈ 0) on set-grouped streams;
* its approximation stays ≤ 2√n·OPT;
* on a non-grouped (interleaved) stream it *fails structurally* — the
  model violation is detected, which is the practical face of the
  set-arrival → edge-arrival hardness jump.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate, fit_power_law
from repro.baselines.emek_rosen import SetArrivalThresholdGreedy
from repro.errors import InvalidStreamError
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import RoundRobinInterleaveOrder, SetGroupedOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "set-arrival-baseline"
TITLE = "Set-arrival baseline: Θ(√n)-approx with Õ(n) space (context row)"
PAPER_CLAIM = (
    "Set-arrival one-pass: Õ(n) space suffices for Θ(√n)-approximation "
    "[10, 13]; this is what the edge-arrival model breaks"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 6
    n = 144
    m_values = [500, 1000, 2000] if quick else [500, 1000, 2000, 4000, 8000]

    rows: List[List[object]] = []
    space_means: List[float] = []
    worst_ratio = 0.0

    for m in m_values:
        peaks, ratios = [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            planted = planted_partition_instance(n, m, opt_size=12, seed=s)
            stream = ReplayableStream(planted.instance, SetGroupedOrder(seed=s))
            result = SetArrivalThresholdGreedy(seed=s).run(stream.fresh())
            result.verify(planted.instance)
            peaks.append(float(result.space.peak_words))
            ratios.append(result.cover_size / planted.opt_upper_bound)
        space = aggregate(peaks)
        ratio = aggregate(ratios)
        space_means.append(space.mean)
        worst_ratio = max(worst_ratio, ratio.maximum)
        rows.append([m, str(space), str(ratio)])

    space_exponent, _ = fit_power_law([float(m) for m in m_values], space_means)

    # Model violation check: interleaved streams are rejected.
    planted = planted_partition_instance(n, m_values[0], opt_size=12, seed=1)
    stream = ReplayableStream(
        planted.instance, RoundRobinInterleaveOrder(seed=1)
    )
    try:
        SetArrivalThresholdGreedy(seed=1).run(stream.fresh())
        rejected = 0.0
    except InvalidStreamError:
        rejected = 1.0

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["m", "peak words", "ratio vs OPT"],
        rows=rows,
        findings={
            "space_vs_m_exponent": space_exponent,  # theory: ~0 (independent of m)
            "worst_ratio_over_2sqrt_n": worst_ratio / (2 * math.sqrt(n)),
            "interleaved_stream_rejected": rejected,  # 1.0 = model enforced
        },
        notes=[
            "space flat in m: the set-arrival advantage the edge-arrival "
            "lower bound (Theorem 2) proves impossible in general",
            "the baseline detects interleaved (true edge-arrival) streams "
            "and refuses: the two models genuinely differ",
        ],
    )
