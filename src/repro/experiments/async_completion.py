"""Experiment ``async-completion``: logical completion time vs W.

The asynchronous simulator puts a clock on what the communication
topology only implies: the chain protocol's hand-offs are *inherently
sequential* — hand-off ``i+1`` cannot leave shard ``i+1`` before
hand-off ``i`` arrives — so the scheduler *idles* once per hand-off
waiting on the dependency, ``W-1`` idle ticks in all, while the star
coordinators (union, greedy) post every upload concurrently and idle a
constant amount whatever ``W`` is (their clock still advances one tick
per delivered message — that is bandwidth, not latency).  That is the
operational face of the Theorem 2 tradeoff: the chain buys its
``2√(nW)`` approximation and ``O(n)`` messages with an ``Ω(W)``
dependency-bound critical path.

Sweep W × coordinator under seeded random delivery, recording the
scheduler's final clock (``logical_steps``), delivered messages, and
idle ticks; verify every run and assert the async/sync cover parity on
the side.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import aggregate
from repro.analysis.tables import render_scatter
from repro.distributed import run_distributed
from repro.distributed.asyncsim import run_distributed_async
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.types import make_rng

EXPERIMENT_ID = "async-completion"
TITLE = "Asynchronous completion: chain's O(W) critical path vs star's O(1)"
PAPER_CLAIM = (
    "the chain protocol's W-1 sequential hand-offs cost a "
    "dependency-bound critical path linear in W (the scheduler idles "
    "once per hand-off), where star-shaped merges of the same shard "
    "outputs wait a constant number of ticks at any W"
)

_COORDINATORS = ("union", "greedy", "chain")


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 6
    n = 100
    m = 500 if quick else 1000
    opt_size = 10
    worker_values = [2, 4, 8] if quick else [2, 4, 8, 16, 32]

    rows: List[List[object]] = []
    points = []
    parity_checked = 0
    chain_idle_by_w = {}
    star_idle_max = 0.0

    for workers in worker_values:
        for coordinator in _COORDINATORS:
            steps, delivered, idle = [], [], []
            for _ in range(replications):
                s = rng.getrandbits(63)
                planted = planted_partition_instance(
                    n, m, opt_size=opt_size, seed=s
                )
                result = run_distributed_async(
                    planted.instance,
                    workers=workers,
                    algorithm="kk",
                    strategy="by-set",
                    coordinator=coordinator,
                    seed=s,
                    backend="serial",
                    schedule_seed=s,
                )
                result.verify(planted.instance)
                sync = run_distributed(
                    planted.instance,
                    workers=workers,
                    algorithm="kk",
                    strategy="by-set",
                    coordinator=coordinator,
                    seed=s,
                    backend="serial",
                )
                assert result.cover == sync.cover, (
                    f"async/sync parity broken: {coordinator} W={workers}"
                )
                parity_checked += 1
                steps.append(result.diagnostics["logical_steps"])
                delivered.append(result.diagnostics["delivered_messages"])
                idle.append(result.diagnostics["idle_ticks"])
            agg_steps = aggregate(steps)
            agg_idle = aggregate(idle)
            if coordinator == "chain":
                chain_idle_by_w[workers] = agg_idle.mean
            else:
                star_idle_max = max(star_idle_max, agg_idle.mean)
            rows.append(
                [
                    workers,
                    coordinator,
                    str(agg_steps),
                    f"{aggregate(delivered).mean:.1f}",
                    str(agg_idle),
                ]
            )
            points.append(
                (f"{coordinator[0]}{workers}", float(workers), agg_steps.mean)
            )

    chart = render_scatter(
        points,
        x_label="W (shards)",
        y_label="logical steps to completion (mean)",
        title="completion time (u=union, g=greedy, c=chain; digit=W):",
    )

    w_lo, w_hi = min(worker_values), max(worker_values)
    chain_growth = (
        chain_idle_by_w[w_hi] / chain_idle_by_w[w_lo]
        if chain_idle_by_w.get(w_lo)
        else 0.0
    )
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "W",
            "coordinator",
            "logical steps",
            "messages delivered",
            "idle ticks",
        ],
        rows=rows,
        extra_text=chart,
        findings={
            "chain_idle_growth_Wlo_to_Whi": chain_growth,
            "star_idle_max_mean": star_idle_max,
            "parity_runs_checked": float(parity_checked),
        },
        notes=[
            "every async run's cover is identical to its synchronous "
            "twin — the delivery schedule is operational, never semantic",
            f"chain idle time grows ~{chain_growth:.1f}× from W={w_lo} "
            f"to W={w_hi} (one wait per hand-off) while the star "
            f"coordinators idle a constant ≤{star_idle_max:.0f} ticks "
            "at any W: the chain pays for its communication frontier "
            "in dependency latency",
        ],
    )
