"""Experiment ``lb-family``: Lemma 1's set family exists and concentrates.

Paper claim (Lemma 1): random sets T₁..T_m of size √(n·t) with random
t-part partitions satisfy max |T_iʳ ∩ T_j| = O(log n) whp, with
E|T_iʳ ∩ T_j| = 1.

We sample families across n and report the realised mean (≈ 1) and the
max intersection normalised by log n (bounded by a small constant).
"""

from __future__ import annotations

import math
from typing import List

from repro.experiments.base import ExperimentReport
from repro.lowerbound.family import build_family
from repro.types import make_rng

EXPERIMENT_ID = "lb-family"
TITLE = "Lemma 1: small pairwise partial intersections"
PAPER_CLAIM = (
    "Lemma 1: a family T₁..T_m of size-√(n·t) sets with t-part "
    "partitions exists with |T_iʳ ∩ T_j| = O(log n) for all i≠j, r; "
    "the expectation is exactly 1"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    configs = (
        [(100, 20, 4), (225, 30, 4), (400, 40, 4)]
        if quick
        else [(100, 30, 4), (225, 40, 4), (400, 60, 4), (900, 80, 9), (1600, 100, 16)]
    )

    rows: List[List[object]] = []
    worst_normalized = 0.0
    means: List[float] = []

    for n, m, t in configs:
        family = build_family(n, m, t, seed=rng.getrandbits(63))
        worst = family.max_partial_intersection()
        mean = family.mean_partial_intersection()
        normalized = worst / max(1.0, math.log(n))
        worst_normalized = max(worst_normalized, normalized)
        means.append(mean)
        rows.append(
            [
                n,
                m,
                t,
                family.set_size,
                family.part_size,
                mean,
                worst,
                normalized,
            ]
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "n",
            "m",
            "t",
            "|T_i|",
            "|T_i^r|",
            "mean ∩",
            "max ∩",
            "max ∩ / ln n",
        ],
        rows=rows,
        findings={
            "max_intersection_over_log_n": worst_normalized,
            "mean_intersection_overall": sum(means) / len(means),
        },
        notes=[
            "mean intersection ≈ 1 matches the E[|T_iʳ ∩ T_j|] = s²/(n·t) "
            "= 1 calculation in Lemma 1's proof",
            "max intersection stays a small multiple of ln n across n: "
            "the Chernoff concentration the lemma invokes",
        ],
    )
