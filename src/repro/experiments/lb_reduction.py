"""Experiment ``lb-reduction``: Theorem 2's reduction, end to end.

Paper claim (Theorem 2): any α-approximation one-pass edge-arrival
algorithm (α ≥ √n) needs Ω̃(m·n²/α⁴) space, via a reduction from
t-party Set-Disjointness — the parties embed partial sets into the
stream, fork the last party over complement sets, and decide
intersecting/disjoint from the best cover-size estimate.

We run the *actual* reduction with real streaming algorithms:

* the decision distinguishes the two promise cases (cover-size gap
  between the witness run and every disjoint-case run);
* the forwarded messages are the algorithm's live state, so the max
  message tracks the algorithm's space — exactly the quantity the
  communication bound constrains.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import aggregate
from repro.core.kk import KKAlgorithm
from repro.experiments.base import ExperimentReport
from repro.lowerbound.disjointness import disjoint_instance, intersecting_instance
from repro.lowerbound.family import build_family, theoretical_opt_disjoint
from repro.lowerbound.reduction import (
    DisjointnessReduction,
    calibrate_threshold,
)
from repro.types import make_rng

EXPERIMENT_ID = "lb-reduction"
TITLE = "Theorem 2 reduction: Set-Disjointness through a real algorithm"
PAPER_CLAIM = (
    "Theorem 2: an α-approximation streaming algorithm solves t-party "
    "Set-Disjointness via the partial-set embedding; its forwarded state "
    "must therefore be Ω̃(m/t²) = Ω̃(m·n²/α⁴)"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    trials = 4 if quick else 10
    n, m, t = (196, 24, 4) if quick else (400, 48, 4)
    set_size = max(2, m // (2 * t))
    sampled_runs = 6 if quick else 12

    family = build_family(
        n, m, t, seed=rng.getrandbits(63), intersection_slack=1.5
    )

    # Threshold calibration.  The paper places the decision threshold at
    # OPT₀ − 1 assuming an exactly-α-approximate algorithm; our concrete
    # algorithm's approximation constant is empirical, so the parties
    # precompute a threshold from *public* information (the family) by
    # synthesising reference instances of both promise types.
    threshold = calibrate_threshold(
        family,
        algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
        set_size=set_size,
        seed=rng.getrandbits(63),
        sample=sampled_runs,
    )
    reduction = DisjointnessReduction(family, threshold=threshold)

    correct = 0
    intersect_covers: List[float] = []
    disjoint_covers: List[float] = []
    max_messages: List[float] = []
    rows: List[List[object]] = []

    for trial in range(trials):
        s = rng.getrandbits(63)
        if trial % 2 == 0:
            disjointness = intersecting_instance(m, t, set_size, seed=s)
        else:
            disjointness = disjoint_instance(m, t, set_size, seed=s)
        disjointness.check_promise()
        run_indices = reduction.default_run_indices(
            disjointness, sample=sampled_runs, seed=s
        )
        outcome = reduction.execute(
            disjointness,
            algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
            seed=s,
            run_indices=run_indices,
            amplification=3,
        )
        if outcome.correct:
            correct += 1
        best = outcome.best_run()
        if disjointness.is_intersecting:
            intersect_covers.append(float(best.cover_size))
        else:
            disjoint_covers.append(float(best.cover_size))
        max_messages.append(float(outcome.max_message_words))
        rows.append(
            [
                trial,
                outcome.truth,
                outcome.decision,
                best.cover_size,
                f"{outcome.threshold:.0f}",
                outcome.max_message_words,
            ]
        )

    gap = (
        (aggregate(disjoint_covers).mean / aggregate(intersect_covers).mean)
        if intersect_covers and disjoint_covers
        else 0.0
    )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "trial",
            "truth",
            "decision",
            "best cover",
            "threshold",
            "max message (words)",
        ],
        rows=rows,
        findings={
            "decision_accuracy": correct / trials,
            "cover_gap_disjoint_over_intersecting": gap,
            "max_message_words": max(max_messages),
            "opt_disjoint_bound": float(theoretical_opt_disjoint(family)),
            "calibrated_threshold": threshold,
        },
        notes=[
            "the witness run in intersecting instances admits a 2-set "
            "cover; disjoint runs force Ω(√(nt)/log n) sets — the gap the "
            "decision rule exploits",
            "max message = the algorithm's live state at a party hand-off: "
            "this is the space the communication bound lower-bounds",
            "Theorem 5 tolerates protocol error up to 1/4; occasional "
            "misclassifications at laptop scale are within that budget "
            "(amplification=3 per the paper's remark keeps them rare)",
        ],
    )
