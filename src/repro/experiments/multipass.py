"""Experiment ``multipass``: the pass/quality tradeoff of Section 1.

Paper context ([6], [10], [22], discussed in §1 and §1.3): allowing p
passes buys approximation — (1+ε)·log n at p = polylog passes,
O(n^{1/(p+1)}) at constant p — whereas this paper's subject is the
p = 1 frontier.

We run the p-pass threshold greedy on a heavy-tailed workload for
p ∈ {1, 2, 4, 8, ...} and chart cover size against offline greedy
(the p → ∞ limit) and against the one-pass KK-algorithm.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate
from repro.baselines.greedy import greedy_cover_size
from repro.core.kk import KKAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.zipf import zipf_instance
from repro.multipass import FractionalMWU, MultiPassThresholdGreedy
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "multipass"
TITLE = "Multi-pass threshold greedy: passes buy approximation"
PAPER_CLAIM = (
    "Section 1 context ([6], [10]): p passes admit O(n^{1/(p+1)})- to "
    "log n-approximations; one pass (this paper) pays Θ̃(√n)"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 4
    n = 300 if quick else 900
    m = 1200 if quick else 4800
    pass_counts = [1, 2, 4, 8] if quick else [1, 2, 4, 8, 16]

    rows: List[List[object]] = []
    covers_by_passes = {}

    greedy_sizes, kk_sizes, fractional_sizes, fractional_values = [], [], [], []
    all_runs = {p: [] for p in pass_counts}
    for _ in range(replications):
        s = rng.getrandbits(63)
        instance = zipf_instance(n, m, seed=s)
        replayable = ReplayableStream(instance, RandomOrder(seed=s))
        greedy_sizes.append(float(greedy_cover_size(instance)))
        kk = KKAlgorithm(seed=s).run(replayable.fresh())
        kk.verify(instance)
        kk_sizes.append(float(kk.cover_size))
        for passes in pass_counts:
            result = MultiPassThresholdGreedy(passes=passes, seed=s).run(
                replayable
            )
            result.verify(instance)
            all_runs[passes].append(float(result.cover_size))
        # Fractional relaxation ([16]'s regime): increments of MWU, then
        # randomized rounding.
        fractional = FractionalMWU(increments=12, seed=s).run(replayable)
        fractional.verify(instance)
        fractional_sizes.append(float(fractional.cover_size))
        if fractional.diagnostics["fractional_feasible"]:
            fractional_values.append(
                fractional.diagnostics["fractional_value"]
            )

    greedy_mean = aggregate(greedy_sizes).mean
    for passes in pass_counts:
        cover = aggregate(all_runs[passes])
        covers_by_passes[passes] = cover.mean
        rows.append(
            [
                passes,
                str(cover),
                f"{cover.mean / greedy_mean:.2f}x",
            ]
        )
    rows.append(["KK (1 pass, Thm 1)", str(aggregate(kk_sizes)),
                 f"{aggregate(kk_sizes).mean / greedy_mean:.2f}x"])
    rows.append(
        [
            "fractional MWU + rounding ([16])",
            str(aggregate(fractional_sizes)),
            f"{aggregate(fractional_sizes).mean / greedy_mean:.2f}x",
        ]
    )
    rows.append(["greedy (offline)", str(aggregate(greedy_sizes)), "1.00x"])

    first = covers_by_passes[pass_counts[0]]
    last = covers_by_passes[pass_counts[-1]]

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["passes", "cover", "vs offline greedy"],
        rows=rows,
        findings={
            "single_pass_over_greedy": first / greedy_mean,
            "max_passes_over_greedy": last / greedy_mean,
            "improvement_factor": first / last,
            "fractional_rounded_over_greedy": (
                aggregate(fractional_sizes).mean / greedy_mean
            ),
            **(
                {
                    "fractional_value_over_greedy": (
                        aggregate(fractional_values).mean / greedy_mean
                    )
                }
                if fractional_values
                else {}
            ),
        },
        notes=[
            "cover size decreases monotonically-ish in the pass count and "
            "approaches offline greedy: the pass/quality tradeoff the "
            "one-pass theorems forgo",
            "the multi-pass algorithm keeps Õ(m) counters per pass — same "
            "state as KK, more passes",
        ],
    )
