"""Experiment ``table1-row4``: Algorithm 1 (Theorem 3), the main result.

Paper claim (Table 1 row 4 / Theorem 3): for m = Ω̃(n²) ∩ poly(n), a
one-pass Õ(√n)-approximation using Õ(m/√n) space on random-order
streams.

Sweep n with m = Θ(n²): Algorithm 1's peak space should scale like
m/√n = Θ(n^1.5) (fitted exponent ≈ 1.5) while the KK-algorithm, run on
the identical streams, scales like m = Θ(n²) (exponent ≈ 2); both
should deliver Õ(√n)-quality covers.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate, fit_power_law
from repro.baselines.greedy import greedy_cover_size
from repro.core.kk import KKAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "table1-row4"
TITLE = "Algorithm 1: Õ(√n)-approx with Õ(m/√n) space, random order"
PAPER_CLAIM = (
    "Theorem 3: for m = Ω̃(n²) ∩ poly(n), one-pass Õ(√n)-approximation "
    "with space Õ(m/√n) on random-order streams"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 4
    n_values = [49, 100, 196] if quick else [49, 100, 196, 400, 784]

    rows: List[List[object]] = []
    ro_space_means: List[float] = []
    kk_space_means: List[float] = []
    ratio_means: List[float] = []

    for n in n_values:
        instance = quadratic_family(n, density=0.5, seed=rng.getrandbits(63))
        baseline = greedy_cover_size(instance)
        ro_peaks, kk_peaks, ratios = [], [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            stream = ReplayableStream(instance, RandomOrder(seed=s))
            ro = RandomOrderAlgorithm(seed=s).run(stream.fresh())
            kk = KKAlgorithm(seed=s).run(stream.fresh())
            ro.verify(instance)
            kk.verify(instance)
            ro_peaks.append(float(ro.space.peak_words))
            kk_peaks.append(float(kk.space.peak_words))
            ratios.append(ro.cover_size / max(1, baseline))
        ro_space = aggregate(ro_peaks)
        kk_space = aggregate(kk_peaks)
        ratio = aggregate(ratios)
        ro_space_means.append(ro_space.mean)
        kk_space_means.append(kk_space.mean)
        ratio_means.append(ratio.mean)
        rows.append(
            [
                n,
                instance.m,
                str(ro_space),
                str(kk_space),
                f"{kk_space.mean / ro_space.mean:.1f}x",
                str(ratio),
            ]
        )

    ns = [float(n) for n in n_values]
    ro_exponent, _ = fit_power_law(ns, ro_space_means)
    kk_exponent, _ = fit_power_law(ns, kk_space_means)
    ratio_exponent, _ = fit_power_law(ns, ratio_means)
    normalized = [r / math.sqrt(n) for r, n in zip(ratio_means, n_values)]

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "n",
            "m",
            "Alg1 peak words",
            "KK peak words",
            "KK/Alg1 space",
            "Alg1 ratio vs greedy",
        ],
        rows=rows,
        findings={
            "alg1_space_vs_n_exponent": ro_exponent,  # theory: ~1.5 (m/√n, m=n²/2)
            "kk_space_vs_n_exponent": kk_exponent,  # theory: ~2 (m)
            "ratio_vs_n_exponent": ratio_exponent,  # info only (≤ 0.5)
            "max_normalized_ratio": max(normalized),  # theory: O(polylog)
            "space_advantage_at_max_n": kk_space_means[-1] / ro_space_means[-1],
        },
        notes=[
            "with m = n²/2, Õ(m/√n) = Θ̃(n^1.5) vs KK's Θ̃(m) = Θ̃(n²): "
            "the gap between the two fitted exponents should approach 0.5",
            "ratio is measured against offline greedy (≥ OPT), so reported "
            "ratios are conservative",
        ],
    )
