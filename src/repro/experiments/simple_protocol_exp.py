"""Experiment ``simple-protocol``: the deterministic 2√(nt) protocol.

Paper claim (Section 3, full version): there is a deterministic t-party
protocol with approximation factor 2√(n·t) and maximum message length
Õ(n) — hence lower bounds above Θ̃(n) space require t = Ω(α²/n)
parties.

Sweep t: the measured cover stays within 2√(nt)·OPT and the max message
stays O(n) words regardless of t and m.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.lowerbound.simple_protocol import (
    run_simple_protocol,
    split_instance_among_parties,
)
from repro.types import make_rng

EXPERIMENT_ID = "simple-protocol"
TITLE = "Deterministic t-party protocol: 2√(nt)-approx, Õ(n) messages"
PAPER_CLAIM = (
    "full version of the paper: a deterministic t-party protocol with "
    "approximation 2√(n·t) and maximum message length Õ(n)"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 6
    n = 225
    m = 1800 if quick else 7200
    t_values = [2, 4, 8] if quick else [2, 4, 8, 16, 32]

    rows: List[List[object]] = []
    worst_quality = 0.0
    worst_message = 0.0

    for t in t_values:
        covers, messages, qualities = [], [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            planted = planted_partition_instance(n, m, opt_size=15, seed=s)
            parties = split_instance_among_parties(planted.instance, t, seed=s)
            result = run_simple_protocol(n, parties)
            bound = 2 * math.sqrt(n * t) * planted.opt_upper_bound
            covers.append(float(result.cover_size))
            messages.append(float(result.max_message_words))
            qualities.append(result.cover_size / bound)
        cover = aggregate(covers)
        message = aggregate(messages)
        quality = aggregate(qualities)
        worst_quality = max(worst_quality, quality.maximum)
        worst_message = max(worst_message, message.maximum)
        rows.append(
            [
                t,
                str(cover),
                f"{2 * math.sqrt(n * t) * 15:.0f}",
                str(message),
                str(quality),
            ]
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "t",
            "cover",
            "2√(nt)·OPT bound",
            "max message (words)",
            "cover / bound",
        ],
        rows=rows,
        findings={
            "worst_cover_over_bound": worst_quality,  # must be <= 1
            "worst_message_over_n": worst_message / n,  # O(1)·n expected
        },
        notes=[
            "cover/bound ≤ 1 everywhere: the 2√(nt) factor holds",
            "messages are a small multiple of n words and flat in m: the "
            "Õ(n) message bound that necessitates t = Ω(α²/n) parties",
        ],
    )
