"""Experiment ``length-oblivious``: the §4.1 w.l.o.g. claim.

Paper claim (Section 4.1): assuming the stream length N is known is
without loss of generality — run O(log) parallel copies of Algorithm 1
with guesses ``2ⁱ·m/√n``; the copy whose guess is closest to N produces
a valid solution, and since the guesses are geometric, some guess is
within a factor 2 of the truth.

We check: (a) the chosen guess is within 2.1× of the true N across
instance shapes, (b) the oblivious wrapper's cover stays comparable to
the N-aware algorithm's, (c) the space cost is the expected
(number-of-guesses) multiple.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate
from repro.core.random_order import RandomOrderAlgorithm, StreamLengthOblivious
from repro.experiments.base import ExperimentReport
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "length-oblivious"
TITLE = "Knowing N is w.l.o.g.: parallel geometric guesses (Section 4.1)"
PAPER_CLAIM = (
    "Section 4.1: run O(log) parallel executions with guesses 2ⁱ·m/√n "
    "for N; the run with the closest guess produces a valid solution"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 2 if quick else 4
    n_values = [64, 144] if quick else [64, 144, 256, 400]

    rows: List[List[object]] = []
    worst_guess_factor = 0.0
    cover_ratios: List[float] = []

    for n in n_values:
        instance = quadratic_family(n, density=0.5, seed=rng.getrandbits(63))
        guess_factors, ratios, guesses_counts = [], [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            stream = ReplayableStream(instance, RandomOrder(seed=s))
            aware = RandomOrderAlgorithm(seed=s).run(stream.fresh())
            oblivious = StreamLengthOblivious(seed=s).run(stream.fresh())
            for result in (aware, oblivious):
                result.verify(instance)
            guess = oblivious.diagnostics["chosen_guess"]
            truth = oblivious.diagnostics["true_length"]
            factor = max(guess / truth, truth / guess)
            guess_factors.append(factor)
            ratios.append(
                oblivious.cover_size / max(1, aware.cover_size)
            )
            guesses_counts.append(oblivious.diagnostics["num_guesses"])
        factor = aggregate(guess_factors)
        ratio = aggregate(ratios)
        worst_guess_factor = max(worst_guess_factor, factor.maximum)
        cover_ratios.extend(ratios)
        rows.append(
            [
                n,
                instance.m,
                instance.num_edges,
                str(factor),
                str(aggregate(guesses_counts)),
                str(ratio),
            ]
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "n",
            "m",
            "true N",
            "guess factor",
            "parallel guesses",
            "oblivious/aware cover",
        ],
        rows=rows,
        findings={
            "worst_guess_factor": worst_guess_factor,  # theory: <= 2
            "mean_cover_ratio": sum(cover_ratios) / len(cover_ratios),
        },
        notes=[
            "geometric guesses 2ⁱ·m/√n put some guess within 2x of any "
            "N ∈ [m/√n, m·n] — measured as worst_guess_factor ≤ ~2",
            "the oblivious wrapper's cover tracks the N-aware run; its "
            "space is (number of guesses) × one copy, the O(log) factor "
            "the w.l.o.g. argument pays",
        ],
    )
