"""Communication-complexity substrate for the Theorem-2 lower bound.

Contains the Lemma-1 set family, t-party Set-Disjointness instances,
a one-way protocol simulator with exact message accounting, the
Theorem-2 reduction runnable against real streaming algorithms, and the
deterministic 2√(nt) protocol from the paper's full version.
"""

from repro.lowerbound.disjointness import (
    DisjointnessInstance,
    disjoint_instance,
    intersecting_instance,
    random_promise_instance,
)
from repro.lowerbound.family import (
    PartitionedFamily,
    build_family,
    theoretical_opt_disjoint,
)
from repro.lowerbound.protocol import (
    Message,
    OneWayChain,
    ProtocolResult,
    run_partitioned_stream,
)
from repro.lowerbound.reduction import (
    DisjointnessReduction,
    ReductionOutcome,
    ReductionRun,
    recommended_parties,
)
from repro.lowerbound.simple_protocol import (
    PartyInput,
    SimpleProtocolResult,
    run_simple_protocol,
    split_instance_among_parties,
)

__all__ = [
    "PartitionedFamily",
    "build_family",
    "theoretical_opt_disjoint",
    "DisjointnessInstance",
    "disjoint_instance",
    "intersecting_instance",
    "random_promise_instance",
    "Message",
    "OneWayChain",
    "ProtocolResult",
    "run_partitioned_stream",
    "DisjointnessReduction",
    "ReductionOutcome",
    "ReductionRun",
    "recommended_parties",
    "PartyInput",
    "SimpleProtocolResult",
    "run_simple_protocol",
    "split_instance_among_parties",
]
