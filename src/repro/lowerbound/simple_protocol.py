"""The deterministic t-party protocol with approximation 2√(nt).

The paper states (Section 3, proof deferred to the full version) that a
simple deterministic ``t``-party protocol achieves approximation factor
``2√(nt)`` with maximum message length Õ(n) — which is why the lower
bound needs ``t = Ω(α²/n)`` parties.  The protocol:

* The message carries the still-uncovered element set (≤ n words), a
  witness set id for every uncovered element seen so far (≤ n words),
  and the ids of the sets chosen so far.
* Each party greedily takes, from *its own* sets, any set covering at
  least ``√(n/t)`` still-uncovered elements, repeating until none
  qualifies.  At most ``n / √(n/t) = √(nt)`` sets are taken in total
  across all parties.
* The last party patches every remaining uncovered element with its
  recorded witness (one set per element).  Since after party ``p``
  spoke none of its sets covers ``√(n/t)`` of the *final* residue, the
  residue satisfies ``|R| ≤ √(n/t) · OPT``; with the greedy phase's
  ``√(nt)`` sets the total is ``≤ 2√(nt) · OPT``.

The protocol engine itself lives in
:func:`repro.distributed.chain.chain_merge` — the distributed layer's
chain coordinator runs the same loop over shard views — and this module
is a thin wrapper naming each party's sets ``(party, local_id)`` and
accounting message sizes exactly as before, so the ``simple-protocol``
experiment can verify both the approximation factor and the Õ(n)
message bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, cast

from repro.distributed.chain import chain_merge
from repro.distributed.router import deal_round_robin
from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.types import ElementId, SetId


class PartyInput:
    """One party's share: a list of sets over the common universe."""

    def __init__(self, sets: Sequence[Set[ElementId]]) -> None:
        self.sets = [set(s) for s in sets]


@dataclass
class SimpleProtocolResult:
    """Outcome of :func:`run_simple_protocol`."""

    cover: List[Tuple[int, SetId]]
    certificate: Dict[ElementId, Tuple[int, SetId]]
    message_words: List[int]
    threshold: float

    @property
    def cover_size(self) -> int:
        """Number of (party, set) pairs in the output cover."""
        return len(self.cover)

    @property
    def max_message_words(self) -> int:
        """Longest inter-party message in words."""
        return max(self.message_words) if self.message_words else 0


def run_simple_protocol(
    n: int,
    parties: Sequence[PartyInput],
    threshold: Optional[float] = None,
) -> SimpleProtocolResult:
    """Execute the deterministic 2√(nt) protocol.

    Parameters
    ----------
    n:
        Universe size; elements are ``0..n-1``.  The union of all
        parties' sets must cover the universe.
    parties:
        Per-party set collections.  Empty parties are legal: they
        forward the protocol state untouched (and still send a
        message, which the accounting records).
    threshold:
        Greedy take-threshold; defaults to ``√(n/t)`` as in the
        analysis.
    """
    t = len(parties)
    if t < 2:
        raise ConfigurationError(f"need at least 2 parties, got {t}")
    party_sets = [
        [
            ((index, local_id), members)
            for local_id, members in enumerate(party.sets)
        ]
        for index, party in enumerate(parties)
    ]
    outcome = chain_merge(n, party_sets, threshold=threshold)
    return SimpleProtocolResult(
        cover=cast(List[Tuple[int, SetId]], outcome.cover),
        certificate=cast(
            Dict[ElementId, Tuple[int, SetId]], outcome.certificate
        ),
        message_words=outcome.message_words,
        threshold=outcome.threshold,
    )


def split_instance_among_parties(
    instance: SetCoverInstance, t: int, seed=None
) -> List[PartyInput]:
    """Deal an instance's sets to ``t`` parties round-robin (seeded shuffle).

    Delegates to :func:`repro.distributed.router.deal_round_robin`, the
    same deal the by-set shard router uses — so a by-set distributed run
    with the same seed gives every shard exactly this party's sets, in
    this order.  ``t`` may exceed the number of sets: the surplus
    parties receive empty shares (legal; they forward protocol state
    untouched).
    """
    if t < 2:
        raise ConfigurationError(f"need at least 2 parties, got {t}")
    _, per_party = deal_round_robin(instance.m, t, seed=seed)
    return [
        PartyInput([set(instance.set_members(s)) for s in share])
        for share in per_party
    ]
