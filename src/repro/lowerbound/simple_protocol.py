"""The deterministic t-party protocol with approximation 2√(nt).

The paper states (Section 3, proof deferred to the full version) that a
simple deterministic ``t``-party protocol achieves approximation factor
``2√(nt)`` with maximum message length Õ(n) — which is why the lower
bound needs ``t = Ω(α²/n)`` parties.  We implement the natural such
protocol:

* The message carries the still-uncovered element set (≤ n words), a
  witness set id for every uncovered element seen so far (≤ n words),
  and the ids of the sets chosen so far.
* Each party greedily takes, from *its own* sets, any set covering at
  least ``√(n/t)`` still-uncovered elements, repeating until none
  qualifies.  At most ``n / √(n/t) = √(nt)`` sets are taken in total
  across all parties.
* The last party patches every remaining uncovered element with its
  recorded witness (one set per element).  Since after party ``p``
  spoke none of its sets covers ``√(n/t)`` of the *final* residue, the
  residue satisfies ``|R| ≤ √(n/t) · OPT``; with the greedy phase's
  ``√(nt)`` sets the total is ``≤ 2√(nt) · OPT``.

The implementation runs on top of :class:`OneWayChain` and accounts
message sizes explicitly, so the ``simple-protocol`` experiment can
verify both the approximation factor and the Õ(n) message bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.lowerbound.protocol import Message, OneWayChain, ProtocolResult
from repro.streaming.instance import SetCoverInstance
from repro.types import ElementId, SetId


@dataclass
class _State:
    """Payload forwarded between parties."""

    uncovered: Set[ElementId]
    witnesses: Dict[ElementId, Tuple[int, SetId]]  # element -> (party, local id)
    chosen: List[Tuple[int, SetId]]  # (party, local set id) pairs

    def words(self) -> int:
        """Words: one per uncovered element, two per witness, two per chosen."""
        return len(self.uncovered) + 2 * len(self.witnesses) + 2 * len(self.chosen)


@dataclass
class SimpleProtocolResult:
    """Outcome of :func:`run_simple_protocol`."""

    cover: List[Tuple[int, SetId]]
    certificate: Dict[ElementId, Tuple[int, SetId]]
    message_words: List[int]
    threshold: float

    @property
    def cover_size(self) -> int:
        """Number of (party, set) pairs in the output cover."""
        return len(self.cover)

    @property
    def max_message_words(self) -> int:
        """Longest inter-party message in words."""
        return max(self.message_words) if self.message_words else 0


class PartyInput:
    """One party's share: a list of sets over the common universe."""

    def __init__(self, sets: Sequence[Set[ElementId]]) -> None:
        self.sets = [set(s) for s in sets]


def run_simple_protocol(
    n: int,
    parties: Sequence[PartyInput],
    threshold: Optional[float] = None,
) -> SimpleProtocolResult:
    """Execute the deterministic 2√(nt) protocol.

    Parameters
    ----------
    n:
        Universe size; elements are ``0..n-1``.  The union of all
        parties' sets must cover the universe.
    parties:
        Per-party set collections.
    threshold:
        Greedy take-threshold; defaults to ``√(n/t)`` as in the
        analysis.
    """
    t = len(parties)
    if t < 2:
        raise ConfigurationError(f"need at least 2 parties, got {t}")
    tau = threshold if threshold is not None else math.sqrt(n / t)

    def make_party(index: int, is_last: bool):
        def party(incoming: Optional[Message], party_input: PartyInput) -> Message:
            if incoming is None:
                state = _State(
                    uncovered=set(range(n)), witnesses={}, chosen=[]
                )
            else:
                state = incoming.payload
            # Record witnesses for any still-uncovered element we hold.
            for local_id, members in enumerate(party_input.sets):
                for u in members:
                    if u in state.uncovered and u not in state.witnesses:
                        state.witnesses[u] = (index, local_id)
            # Greedy phase over this party's own sets.
            progress = True
            while progress:
                progress = False
                for local_id, members in enumerate(party_input.sets):
                    gain = len(members & state.uncovered)
                    if gain >= tau:
                        state.chosen.append((index, local_id))
                        state.uncovered -= members
                        progress = True
            if is_last:
                # Patch the residue with recorded witnesses.
                for u in sorted(state.uncovered):
                    witness = state.witnesses.get(u)
                    if witness is None:
                        raise ProtocolError(
                            f"element {u} is covered by no party's sets; "
                            "instance infeasible"
                        )
                    state.chosen.append(witness)
                state.uncovered = set()
            return Message(payload=state, words=state.words())

        return party

    chain = OneWayChain(
        [make_party(i, is_last=(i == t - 1)) for i in range(t)]
    )
    transcript: ProtocolResult = chain.execute(list(parties))
    state: _State = transcript.output

    # Deduplicate the chosen list (a witness may repeat a greedy pick).
    seen: Set[Tuple[int, SetId]] = set()
    cover: List[Tuple[int, SetId]] = []
    for pick in state.chosen:
        if pick not in seen:
            seen.add(pick)
            cover.append(pick)

    certificate: Dict[ElementId, Tuple[int, SetId]] = {}
    for party_id, local_id in cover:
        for u in parties[party_id].sets[local_id]:
            certificate.setdefault(u, (party_id, local_id))
    missing = [u for u in range(n) if u not in certificate]
    if missing:
        raise ProtocolError(
            f"protocol output misses {len(missing)} element(s), e.g. "
            f"{missing[:5]}"
        )

    return SimpleProtocolResult(
        cover=cover,
        certificate=certificate,
        message_words=transcript.message_words,
        threshold=tau,
    )


def split_instance_among_parties(
    instance: SetCoverInstance, t: int, seed=None
) -> List[PartyInput]:
    """Deal an instance's sets to ``t`` parties round-robin (seeded shuffle)."""
    from repro.types import make_rng

    if t < 2:
        raise ConfigurationError(f"need at least 2 parties, got {t}")
    rng = make_rng(seed)
    order = list(range(instance.m))
    rng.shuffle(order)
    shares: List[List[Set[ElementId]]] = [[] for _ in range(t)]
    for position, set_id in enumerate(order):
        shares[position % t].append(set(instance.set_members(set_id)))
    return [PartyInput(share) for share in shares]
