"""t-party Set-Disjointness instances (the source problem of Theorem 2).

In one-way ``t``-party Set-Disjointness each party ``p`` holds
``S_p ⊆ [m]`` under the promise that the sets are either *pairwise
disjoint* or *uniquely intersecting* (one common element, and every
pairwise intersection equals exactly that element).  Chakrabarti, Khot
and Sun [9] proved one-way communication Ω(m/t), hence some message of
size Ω(m/t²) — the quantitative engine of Theorem 2.

This module generates promise instances of both kinds, with explicit
seeds, for the end-to-end reduction demo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.types import SeedLike, make_rng


@dataclass(frozen=True)
class DisjointnessInstance:
    """A promise instance of one-way t-party Set-Disjointness.

    Attributes
    ----------
    m:
        Ground-set size; party sets live in ``range(m)``.
    sets:
        ``sets[p]`` is party ``p``'s set.
    intersecting_element:
        The unique common element if the instance is uniquely
        intersecting; ``None`` for pairwise-disjoint instances.
    """

    m: int
    sets: Tuple[FrozenSet[int], ...]
    intersecting_element: Optional[int]

    @property
    def t(self) -> int:
        """Number of parties."""
        return len(self.sets)

    @property
    def is_intersecting(self) -> bool:
        """Whether the promise case is "uniquely intersecting"."""
        return self.intersecting_element is not None

    def check_promise(self) -> None:
        """Raise :class:`ConfigurationError` unless the promise holds."""
        for p in range(self.t):
            for q in range(p + 1, self.t):
                inter = self.sets[p] & self.sets[q]
                if self.intersecting_element is None:
                    if inter:
                        raise ConfigurationError(
                            f"parties {p},{q} intersect in {sorted(inter)[:3]} "
                            "but instance claims pairwise disjoint"
                        )
                else:
                    if inter != {self.intersecting_element}:
                        raise ConfigurationError(
                            f"parties {p},{q} intersect in {sorted(inter)[:3]}, "
                            f"expected exactly {{{self.intersecting_element}}}"
                        )


def disjoint_instance(
    m: int, t: int, set_size: int, seed: SeedLike = None
) -> DisjointnessInstance:
    """Pairwise-disjoint promise instance: parties get disjoint slices."""
    _validate(m, t, set_size, need=t * set_size)
    rng = make_rng(seed)
    ground = list(range(m))
    rng.shuffle(ground)
    sets: List[FrozenSet[int]] = []
    for p in range(t):
        chunk = ground[p * set_size : (p + 1) * set_size]
        sets.append(frozenset(chunk))
    return DisjointnessInstance(m=m, sets=tuple(sets), intersecting_element=None)


def intersecting_instance(
    m: int, t: int, set_size: int, seed: SeedLike = None
) -> DisjointnessInstance:
    """Uniquely-intersecting instance: disjoint slices plus one shared element."""
    if set_size < 1:
        raise ConfigurationError("set_size must be >= 1")
    _validate(m, t, set_size, need=t * (set_size - 1) + 1)
    rng = make_rng(seed)
    ground = list(range(m))
    rng.shuffle(ground)
    shared = ground[0]
    rest = ground[1:]
    sets: List[FrozenSet[int]] = []
    per_party = set_size - 1
    for p in range(t):
        chunk = rest[p * per_party : (p + 1) * per_party]
        sets.append(frozenset(chunk) | {shared})
    return DisjointnessInstance(
        m=m, sets=tuple(sets), intersecting_element=shared
    )


def random_promise_instance(
    m: int, t: int, set_size: int, seed: SeedLike = None
) -> DisjointnessInstance:
    """A uniformly random choice between the two promise cases."""
    rng = make_rng(seed)
    if rng.random() < 0.5:
        return disjoint_instance(m, t, set_size, seed=rng)
    return intersecting_instance(m, t, set_size, seed=rng)


def _validate(m: int, t: int, set_size: int, need: int) -> None:
    if t < 2:
        raise ConfigurationError(f"need at least 2 parties, got {t}")
    if set_size < 1:
        raise ConfigurationError(f"set_size must be >= 1, got {set_size}")
    if need > m:
        raise ConfigurationError(
            f"ground set m={m} too small for t={t} parties with sets of "
            f"size {set_size} (need {need})"
        )
