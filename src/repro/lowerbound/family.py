"""The Lemma-1 set family behind the Theorem-2 lower bound.

Lemma 1: for ``t ≤ n`` and ``m = poly(n)`` there exist sets
``T₁, …, T_m ⊆ [n]``, each of size ``s = √(n·t)``, with partitions
``T_i = T_i¹ ∪̇ … ∪̇ T_iᵗ`` into parts of size ``√(n/t)``, such that
every *partial* set intersects every *other* full set in only
``O(log n)`` elements.

The proof is probabilistic (random sets work with non-zero
probability); we construct the family the same way — sample, then
*verify* — and expose the verification so tests and the ``lb-family``
experiment can confirm the concentration empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import SeedLike, make_rng


@dataclass(frozen=True)
class PartitionedFamily:
    """A family ``T₁..T_m`` with ``t``-part partitions, as in Lemma 1.

    Attributes
    ----------
    n, t:
        Universe size and number of parts per set.
    parts:
        ``parts[i][r]`` is the frozen part ``T_i^{r+1}`` (0-indexed
        parties).  ``T_i`` is the disjoint union of its parts.
    """

    n: int
    t: int
    parts: Tuple[Tuple[frozenset, ...], ...]

    @property
    def m(self) -> int:
        """Number of sets in the family."""
        return len(self.parts)

    @property
    def part_size(self) -> int:
        """``|T_i^r| = √(n/t)`` (after integer rounding)."""
        return len(self.parts[0][0])

    @property
    def set_size(self) -> int:
        """``|T_i| = √(n·t)`` (after integer rounding)."""
        return self.part_size * self.t

    def full_set(self, i: int) -> frozenset:
        """``T_i``: the union of its parts."""
        out: set = set()
        for part in self.parts[i]:
            out.update(part)
        return frozenset(out)

    def complement(self, i: int) -> frozenset:
        """``[n] \\ T_i`` — the patch set the last party adds in run ``i``."""
        full = self.full_set(i)
        return frozenset(u for u in range(self.n) if u not in full)

    def max_partial_intersection(self) -> int:
        """``max_{i≠j,r} |T_i^r ∩ T_j|`` — Lemma 1 says O(log n)."""
        fulls = [self.full_set(i) for i in range(self.m)]
        worst = 0
        for i in range(self.m):
            for r in range(self.t):
                part = self.parts[i][r]
                for j in range(self.m):
                    if i == j:
                        continue
                    worst = max(worst, len(part & fulls[j]))
        return worst

    def mean_partial_intersection(self) -> float:
        """Empirical mean of ``|T_i^r ∩ T_j|`` over i≠j, r (Lemma 1: ≈ 1)."""
        fulls = [self.full_set(i) for i in range(self.m)]
        total = 0
        count = 0
        for i in range(self.m):
            for r in range(self.t):
                part = self.parts[i][r]
                for j in range(self.m):
                    if i == j:
                        continue
                    total += len(part & fulls[j])
                    count += 1
        return total / count if count else 0.0


def build_family(
    n: int,
    m: int,
    t: int,
    seed: SeedLike = None,
    max_retries: int = 16,
    intersection_slack: float = 4.0,
) -> PartitionedFamily:
    """Sample a Lemma-1 family and verify its intersection property.

    Each ``T_i`` is a uniform random subset of size ``√(n·t)``
    (rounded to a multiple of ``t``) with a uniform random ``t``-part
    partition.  The construction retries until
    ``max |T_i^r ∩ T_j| ≤ intersection_slack · max(1, ln n)`` — the
    Lemma-1 bound with an explicit constant — and raises
    :class:`ConfigurationError` if ``max_retries`` samples all fail
    (which signals parameters outside the lemma's regime, e.g. m far
    beyond poly(n) for tiny n).
    """
    if t < 1 or t > n:
        raise ConfigurationError(f"need 1 <= t <= n, got t={t}, n={n}")
    if m < 1:
        raise ConfigurationError(f"need m >= 1, got {m}")
    part_size = max(1, round(math.sqrt(n / t)))
    set_size = part_size * t
    if set_size > n:
        raise ConfigurationError(
            f"set size √(n·t) ≈ {set_size} exceeds universe n={n}; "
            "reduce t"
        )
    rng = make_rng(seed)
    threshold = intersection_slack * max(1.0, math.log(n))

    last_worst = -1
    for _ in range(max_retries):
        family = _sample_family(n, m, t, part_size, rng)
        worst = family.max_partial_intersection()
        last_worst = worst
        if worst <= threshold:
            return family
    raise ConfigurationError(
        f"could not sample a family with max partial intersection <= "
        f"{threshold:.1f} after {max_retries} tries (best seen: {last_worst}); "
        "parameters are outside Lemma 1's regime"
    )


def _sample_family(
    n: int, m: int, t: int, part_size: int, rng
) -> PartitionedFamily:
    universe = list(range(n))
    all_parts: List[Tuple[frozenset, ...]] = []
    for _ in range(m):
        members = rng.sample(universe, part_size * t)
        parts = tuple(
            frozenset(members[r * part_size : (r + 1) * part_size])
            for r in range(t)
        )
        all_parts.append(parts)
    return PartitionedFamily(n=n, t=t, parts=tuple(all_parts))


def theoretical_opt_disjoint(family: PartitionedFamily) -> int:
    """Lower bound on OPT when the Disjointness sets are pairwise disjoint.

    In parallel run ``j`` the ``s`` elements of ``T_j`` must be covered;
    at most one partial set of ``T_j`` itself is present and every other
    partial set covers O(log n) of them, so OPT ≥ (s − s/t)/maxint where
    ``maxint`` is the family's realised intersection bound.
    """
    s = family.set_size
    maxint = max(1, family.max_partial_intersection())
    return max(1, (s - family.part_size) // maxint)
