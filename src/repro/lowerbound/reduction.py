"""The Theorem-2 reduction: Set-Disjointness → edge-arrival Set Cover.

Given a ``t``-party Set-Disjointness instance ``(S₁, …, S_t)`` over
ground set ``[m]`` and a Lemma-1 family ``T₁..T_m`` with parts
``T_b¹..T_bᵗ``:

* party ``p`` contributes, for each ``b ∈ S_p``, the edges
  ``(b, u)`` for ``u ∈ T_b^p`` — crucially the *set id is b*, so a
  ground-set element held by every party assembles the full set ``T_b``
  across the stream, while an element held by one party yields a set of
  size only ``√(n/t)``;
* the last party forks ``m`` parallel runs, appending in run ``j`` the
  complement set ``T̄_j = [n] \\ T_j`` (a fresh set id ``m``);
* in the *uniquely intersecting* case with witness ``j*``, run ``j*``
  contains the size-2 cover ``{T_{j*}, T̄_{j*}}``; in the *pairwise
  disjoint* case every run needs ``Ω(√(nt)/log n)`` sets, because every
  available set intersects ``T_j`` in ``O(log n)`` elements.

The parties decide "uniquely intersecting" iff some run reports a cover
below a threshold between those two regimes.  Running a *real*
streaming algorithm through this reduction demonstrates the mechanism:
the forwarded messages are the algorithm's state (its space), and the
decision succeeds exactly because the algorithm's approximation is good
enough — which is what Theorem 2 turns into a space lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.base import StreamingSetCoverAlgorithm
from repro.errors import ConfigurationError
from repro.lowerbound.disjointness import DisjointnessInstance
from repro.lowerbound.family import PartitionedFamily, theoretical_opt_disjoint
from repro.lowerbound.protocol import run_partitioned_stream
from repro.streaming.instance import SetCoverInstance
from repro.types import Edge, SeedLike, make_rng

AlgorithmFactory = Callable[[int], StreamingSetCoverAlgorithm]
"""Builds a fresh algorithm from a seed; each parallel run gets the same
seed so the shared prefix is processed identically (this *is* the fork)."""


@dataclass
class ReductionRun:
    """Outcome of one parallel run ``j`` of the reduction."""

    run_index: int
    cover_size: int
    feasible: bool
    universe_patches: int


@dataclass
class ReductionOutcome:
    """Full transcript of one reduction execution."""

    decision: str  # "intersecting" or "disjoint"
    truth: str
    threshold: float
    runs: List[ReductionRun]
    message_words: List[int] = field(default_factory=list)
    opt_disjoint_bound: int = 0

    @property
    def correct(self) -> bool:
        """Whether the protocol's decision matches the promise case."""
        return self.decision == self.truth

    @property
    def max_message_words(self) -> int:
        """Longest forwarded message (= the algorithm's state size)."""
        return max(self.message_words) if self.message_words else 0

    def best_run(self) -> ReductionRun:
        """The run with the smallest cover (the candidate witness)."""
        return min(self.runs, key=lambda r: r.cover_size)


class DisjointnessReduction:
    """Executes Theorem 2's reduction against a streaming algorithm.

    Parameters
    ----------
    family:
        A Lemma-1 :class:`PartitionedFamily`; its ``m`` must cover the
        Disjointness ground set and its ``t`` must equal the party count.
    threshold:
        Cover-size decision threshold; ``None`` uses the paper's
        ``OPT₀ − 1`` with ``OPT₀`` from the realised family
        (:func:`theoretical_opt_disjoint`), scaled by ``alpha_margin``
        to account for the algorithm's approximation factor.
    alpha_margin:
        The paper requires ``2α ≤ OPT₀ − 1``; practically we accept a
        decision threshold of ``alpha_margin · 2`` (the intersecting
        run's cover is at most ``α·2``).
    """

    def __init__(
        self,
        family: PartitionedFamily,
        threshold: Optional[float] = None,
        alpha_margin: float = 1.0,
    ) -> None:
        self.family = family
        self._explicit_threshold = threshold
        self.alpha_margin = alpha_margin

    # -- encoding ----------------------------------------------------------

    def party_edges(
        self, disjointness: DisjointnessInstance, seed: SeedLike = None
    ) -> List[List[Edge]]:
        """The edges each party feeds to the algorithm (shared prefix).

        Within a party the edges are shuffled (the lower bound holds for
        adversarial order, so any order is legal; shuffling avoids
        accidental structure).
        """
        self._check_compatibility(disjointness)
        rng = make_rng(seed)
        out: List[List[Edge]] = []
        for p, s_p in enumerate(disjointness.sets):
            edges: List[Edge] = []
            for b in sorted(s_p):
                for u in sorted(self.family.parts[b][p]):
                    edges.append(Edge(b, u))
            rng.shuffle(edges)
            out.append(edges)
        return out

    def run_instance(
        self, disjointness: DisjointnessInstance, run_index: int
    ) -> Tuple[SetCoverInstance, int]:
        """Ground-truth instance of parallel run ``run_index``.

        Returns the instance and the number of *universe patches*:
        elements of ``T_j`` contained in no included set, which are
        added to the complement set to keep the run feasible (see the
        module docstring of :mod:`repro.lowerbound.family`; at sane
        parameters this count is ~0 and it is reported for
        transparency).
        """
        self._check_compatibility(disjointness)
        m = self.family.m
        members: List[Set[int]] = [set() for _ in range(m)]
        for p, s_p in enumerate(disjointness.sets):
            for b in s_p:
                members[b].update(self.family.parts[b][p])
        complement = set(self.family.complement(run_index))
        covered = set(complement)
        for mem in members:
            covered.update(mem)
        patches = 0
        for u in range(self.family.n):
            if u not in covered:
                complement.add(u)
                patches += 1
        members.append(complement)
        instance = SetCoverInstance(
            self.family.n,
            members,
            name=f"reduction-run-{run_index}",
        )
        return instance, patches

    def complement_edges(self, instance: SetCoverInstance) -> List[Edge]:
        """Edges of the run's complement set (always the last set id)."""
        complement_id = instance.m - 1
        return [
            Edge(complement_id, u)
            for u in sorted(instance.set_members(complement_id))
        ]

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        disjointness: DisjointnessInstance,
        algorithm_factory: AlgorithmFactory,
        seed: SeedLike = None,
        run_indices: Optional[Sequence[int]] = None,
        amplification: int = 1,
    ) -> ReductionOutcome:
        """Run the full protocol and return the decision transcript.

        ``run_indices`` restricts the forked parallel runs (the paper
        forks all ``m``; benchmarks sample a subset for speed — the
        sample must include the witness run for a fair intersecting-case
        demo, and the helper :meth:`default_run_indices` takes care of
        that).

        ``amplification`` implements the paper's success-amplification
        remark: run that many independent copies of the algorithm and
        keep the *smallest* cover per parallel run.  The copies'
        forwarded states are summed into the message sizes, exactly as
        running O(log m) parallel copies would cost.
        """
        if amplification < 1:
            raise ConfigurationError(
                f"amplification must be >= 1, got {amplification}"
            )
        rng = make_rng(seed)
        algo_seeds = [rng.getrandbits(63) for _ in range(amplification)]
        prefix = self.party_edges(disjointness, seed=rng)
        if run_indices is None:
            run_indices = range(self.family.m)

        opt0 = theoretical_opt_disjoint(self.family)
        threshold = (
            self._explicit_threshold
            if self._explicit_threshold is not None
            else max(2.0 * self.alpha_margin, opt0 - 1.0)
            if opt0 > 2
            else 2.0 * self.alpha_margin
        )

        runs: List[ReductionRun] = []
        message_words: List[int] = []
        for j in run_indices:
            instance, patches = self.run_instance(disjointness, j)
            tail = self.complement_edges(instance)
            party_edges = [list(edges) for edges in prefix]
            party_edges[-1] = party_edges[-1] + tail
            best_size: Optional[int] = None
            feasible = True
            copy_messages: List[List[int]] = []
            for algo_seed in algo_seeds:
                algorithm = algorithm_factory(algo_seed)
                result, messages = run_partitioned_stream(
                    algorithm, instance, party_edges
                )
                copy_messages.append(messages)
                if best_size is None or result.cover_size < best_size:
                    best_size = result.cover_size
                    feasible = result.is_valid(instance)
            assert best_size is not None
            runs.append(
                ReductionRun(
                    run_index=j,
                    cover_size=best_size,
                    feasible=feasible,
                    universe_patches=patches,
                )
            )
            if not message_words:
                # The prefix is identical (same seeds, same edges) across
                # parallel runs; record boundary sizes once, summing the
                # amplification copies' states per boundary.
                message_words = [
                    sum(per_copy[b] for per_copy in copy_messages)
                    for b in range(len(copy_messages[0]))
                ]

        best = min(runs, key=lambda r: r.cover_size)
        decision = "intersecting" if best.cover_size <= threshold else "disjoint"
        truth = "intersecting" if disjointness.is_intersecting else "disjoint"
        return ReductionOutcome(
            decision=decision,
            truth=truth,
            threshold=threshold,
            runs=runs,
            message_words=message_words,
            opt_disjoint_bound=opt0,
        )

    def default_run_indices(
        self, disjointness: DisjointnessInstance, sample: int, seed: SeedLike = None
    ) -> List[int]:
        """A run-index sample of size ``sample`` including the witness run."""
        rng = make_rng(seed)
        indices = set(rng.sample(range(self.family.m), min(sample, self.family.m)))
        if disjointness.intersecting_element is not None:
            indices.add(disjointness.intersecting_element)
        return sorted(indices)

    # -- internals -------------------------------------------------------------

    def _check_compatibility(self, disjointness: DisjointnessInstance) -> None:
        if disjointness.t != self.family.t:
            raise ConfigurationError(
                f"family has t={self.family.t} parts but instance has "
                f"{disjointness.t} parties"
            )
        if disjointness.m > self.family.m:
            raise ConfigurationError(
                f"instance ground set {disjointness.m} exceeds family size "
                f"{self.family.m}"
            )


def calibrate_threshold(
    family: PartitionedFamily,
    algorithm_factory: AlgorithmFactory,
    set_size: int,
    seed: SeedLike = None,
    trials: int = 2,
    sample: int = 6,
    amplification: int = 3,
) -> float:
    """Empirical decision threshold for a concrete algorithm.

    The paper sets the threshold analytically (``OPT₀ − 1``) for an
    ideal α-approximator; a concrete algorithm's approximation constant
    is empirical, so the parties precompute the threshold from *public*
    information — the family — by synthesising reference instances of
    both promise types.  The threshold sits just below the disjoint
    references' mean (but never below the two means' midpoint): the
    intersecting case's best cover concentrates well under the disjoint
    case's floor, so hugging that floor maximises accuracy.
    """
    from repro.lowerbound.disjointness import (
        disjoint_instance,
        intersecting_instance,
    )

    rng = make_rng(seed)
    reduction = DisjointnessReduction(family, threshold=0.0)
    sums = {"disjoint": 0.0, "intersecting": 0.0}
    for _ in range(trials):
        for label, builder in (
            ("disjoint", disjoint_instance),
            ("intersecting", intersecting_instance),
        ):
            s = rng.getrandbits(63)
            reference = builder(family.m, family.t, set_size, seed=s)
            outcome = reduction.execute(
                reference,
                algorithm_factory=algorithm_factory,
                seed=s,
                run_indices=reduction.default_run_indices(
                    reference, sample=sample, seed=s
                ),
                amplification=amplification,
            )
            sums[label] += outcome.best_run().cover_size
    mean_disjoint = sums["disjoint"] / trials
    mean_intersecting = sums["intersecting"] / trials
    midpoint = (mean_disjoint + mean_intersecting) / 2.0
    return max(midpoint, mean_disjoint - 1.25)


def recommended_parties(alpha: float, n: int) -> int:
    """The paper's party count ``t = Θ(α²·log²n / n)``, at least 2."""
    t = int(alpha * alpha * (math.log(max(n, 2)) ** 2) / n)
    return max(2, t)
