"""One-way multi-party communication protocol simulation.

Theorem 2 converts a one-pass streaming algorithm into a one-way
``t``-party protocol: party 1 runs the algorithm on its share of the
edges and forwards the *memory state*; party ``i`` resumes from the
received state; the longest forwarded message lower-bounds the
algorithm's space.

This module provides both directions:

* :class:`OneWayChain` — a generic simulator for hand-written protocols
  (parties are callables ``(incoming_message, party_input) -> Message``)
  with exact word-level message accounting; used by the deterministic
  2√(nt) protocol.
* :func:`run_partitioned_stream` — drives a *real* streaming algorithm
  over edges partitioned among parties and records the algorithm's live
  state size (its :class:`SpaceMeter` reading) at every party boundary.
  Those readings are exactly the message sizes of the induced protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.core.base import StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import ProtocolError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.stream import EdgeStream
from repro.types import Edge

PayloadT = TypeVar("PayloadT")


@dataclass
class Message(Generic[PayloadT]):
    """A protocol message: a payload plus its size in words.

    Parties are on their honour to declare ``words`` consistent with
    their payload; the hand-written protocols in this package compute it
    from explicit formulas that the tests check against the payload.
    """

    payload: PayloadT
    words: int

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ProtocolError(f"message size must be >= 0, got {self.words}")


@dataclass
class ProtocolResult(Generic[PayloadT]):
    """Transcript summary of one protocol execution."""

    output: PayloadT
    message_words: List[int] = field(default_factory=list)

    @property
    def max_message_words(self) -> int:
        """Length of the longest message — the quantity lower bounds govern."""
        return max(self.message_words) if self.message_words else 0


PartyFn = Callable[[Optional[Message], object], Message]


class OneWayChain:
    """Sequential one-way protocol: party 1 → party 2 → … → party t.

    Parameters
    ----------
    parties:
        One callable per party.  Party ``i`` receives the message of
        party ``i-1`` (``None`` for the first) and its own input, and
        returns a :class:`Message`.  The last party's message payload is
        the protocol output.
    """

    def __init__(self, parties: Sequence[PartyFn]) -> None:
        if len(parties) < 2:
            raise ProtocolError(
                f"a protocol needs at least 2 parties, got {len(parties)}"
            )
        self._parties = list(parties)

    def execute(self, inputs: Sequence[object]) -> ProtocolResult:
        """Run the chain on per-party ``inputs`` and return the transcript."""
        if len(inputs) != len(self._parties):
            raise ProtocolError(
                f"{len(self._parties)} parties but {len(inputs)} inputs"
            )
        message: Optional[Message] = None
        sizes: List[int] = []
        for party, party_input in zip(self._parties, inputs):
            message = party(message, party_input)
            if not isinstance(message, Message):
                raise ProtocolError(
                    f"party returned {type(message).__name__}, expected Message"
                )
            sizes.append(message.words)
        assert message is not None
        # The final "message" is the output announcement; by convention
        # it is excluded from the max-message statistic (the lower bound
        # concerns inter-party communication).
        return ProtocolResult(output=message.payload, message_words=sizes[:-1])


class _BoundaryProbingStream(EdgeStream):
    """Stream that snapshots an algorithm's meter at party boundaries.

    ``boundaries[i]`` is the number of edges owned by parties ``1..i``
    combined; just before the first edge of party ``i+1`` is consumed
    (and once at stream end) the algorithm's current word count is
    recorded.  Implemented on the base stream's checkpoint hooks, so it
    works for per-edge iteration and batched readers alike — batched
    takes are clamped at the boundaries, guaranteeing the algorithm has
    processed exactly parties ``1..i`` when the snapshot is taken.
    """

    def __init__(
        self,
        instance: SetCoverInstance,
        edges: Sequence[Edge],
        boundaries: Sequence[int],
        meter_reader: Callable[[], int],
        order_name: str = "partitioned",
    ) -> None:
        super().__init__(instance, edges, order_name=order_name)
        # Duplicates are meaningful: an empty party yields a boundary at
        # the same position as its predecessor and still sends a message.
        self._checkpoints = sorted(boundaries)
        self._meter_reader = meter_reader
        self.recorded: List[int] = []

    def _on_checkpoint(self) -> None:
        self.recorded.append(self._meter_reader())


def run_partitioned_stream(
    algorithm: StreamingSetCoverAlgorithm,
    instance: SetCoverInstance,
    party_edges: Sequence[Sequence[Edge]],
) -> Tuple[StreamingResult, List[int]]:
    """Run ``algorithm`` over party-partitioned edges, measuring messages.

    The edges of all parties are concatenated in party order (this *is*
    the adversarial stream of the reduction) and the algorithm's live
    state size is recorded at each of the ``len(party_edges) - 1``
    hand-off points.  Returns the run result and those message sizes in
    words.
    """
    if len(party_edges) < 2:
        raise ProtocolError("need at least two parties worth of edges")
    flat: List[Edge] = []
    boundaries: List[int] = []
    for edges in party_edges[:-1]:
        flat.extend(edges)
        boundaries.append(len(flat))
    flat.extend(party_edges[-1])

    stream = _BoundaryProbingStream(
        instance,
        flat,
        boundaries,
        meter_reader=lambda: algorithm._meter.current_words,
    )
    result = algorithm.run(stream)
    # A boundary at the very end of the stream (empty last party) fires
    # once the algorithm has consumed everything.
    stream.flush_checkpoints()
    if len(stream.recorded) != len(boundaries):
        raise ProtocolError(
            f"expected {len(boundaries)} boundary snapshots, got "
            f"{len(stream.recorded)} (algorithm did not consume the stream?)"
        )
    return result, stream.recorded
