"""Pluggable execution backends: where shard work actually runs.

PR 4's executor hard-wired shard execution to a thread pool, which the
GIL serializes for CPU-bound shard work (``BENCH_perf.json`` showed the
distributed section pinned at the single-thread rate from W=1 through
W=8).  This module turns "how shards execute" into a small pluggable
layer:

``serial``
    Shards run one after another in the calling thread.  The reference
    backend every other backend must match bit-for-bit.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap to spin
    up and shares memory with the parent, but CPU-bound shard work
    serializes behind the GIL — right for I/O-ish or small runs.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  Each shard
    travels as a pickled, self-contained :class:`ShardTask` and is
    resolved against :data:`~repro.algorithms.ALGORITHM_REGISTRY`
    inside the child process; traces come back as serialized span
    cells the parent adopts.  This is the backend that actually breaks
    the GIL ceiling on multi-core hardware.

The determinism contract extends across backends: for a fixed
``(instance, order, seed, workers, …)`` every backend produces a
dataclass-equal :class:`~repro.distributed.executor.DistributedResult`
and byte-identical merged trace JSONL, for every ``max_workers``.
The machinery is the same as PR 4's: seeds are pre-drawn serially
before any task is built, results are slotted by shard index, and
trace cells merge sorted by label.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import InvalidParameterError
from repro.faults.injectors import FaultSpec, apply_faults
from repro.faults.shards import ShardFaultPlan
from repro.obs.events import SHARD_ABANDONED, SHARD_RETRY
from repro.obs.tracer import NULL_TRACER, RecordingTracer
from repro.types import Edge, SetId

from repro.distributed.shmem import (
    ShardSpan,
    ShippingReport,
    SpanView,
    measure_shipping,
    shared_memory_available,
    ship_tasks,
)
from repro.distributed.worker import (
    InstanceShape,
    ShardAccumulator,
    ShardOutput,
    Worker,
)


@dataclass(frozen=True)
class ShardTask:
    """One shard's work, self-contained and pickle-clean.

    Everything a child process needs travels in the task: the instance
    *shape* (not the instance — workers only validate against ``(n, m)``
    and label their local instance), the shard's ordered edge share, the
    router's set enumeration, the pre-drawn algorithm seed, the
    per-shard reseeded fault plan, and the algorithm *name*, resolved
    against the registry on the executing side.  ``traced`` asks the
    executing side to record a span cell and return it serialized.

    Under shared-memory shipping (:mod:`repro.distributed.shmem`) the
    edge payload is hoisted out of the pickle: ``edges`` is empty and
    ``span`` points at the shard's rows inside a shared segment, which
    the executing side resolves back to edge columns.  Exactly one of
    the two carries the shard's stream.
    """

    index: int
    algorithm: str
    seed: int
    shape: InstanceShape
    edges: Tuple[Edge, ...]
    set_order: Tuple[SetId, ...]
    alpha: Optional[float] = None
    fault_specs: Tuple[FaultSpec, ...] = ()
    order_name: str = "canonical"
    traced: bool = False
    span: Optional[ShardSpan] = None

    @property
    def trace_label(self) -> str:
        """The collector cell label this shard's trace merges under."""
        return f"shard[{self.index:03d}]"


@dataclass
class ShardEnvelope:
    """What comes back from executing one :class:`ShardTask`.

    ``trace_jsonl`` is the shard's span cell as canonical JSONL (only
    when the task asked for tracing) — the process-boundary-safe form
    the parent hands to :meth:`~repro.obs.tracer.TraceCollector.adopt_jsonl`.
    Every backend returns this same envelope, so the parent-side merge
    code cannot tell backends apart.
    """

    index: int
    output: ShardOutput
    trace_jsonl: Optional[str] = None


def execute_shard_task(task: ShardTask) -> ShardEnvelope:
    """Run one shard task to completion; the unit every backend executes.

    Module-level (not a method) so :class:`ProcessBackend` can ship it
    to child processes.  Applies the shard's fault plan to its edge
    share, runs the named registry algorithm over the shard, and — when
    tracing — serializes the finished span cell for the parent to
    adopt.

    A task carrying a :class:`~repro.distributed.shmem.ShardSpan`
    resolves its edges from the shared segment first.  The fault-free
    span path feeds the columns straight into a
    :class:`~repro.distributed.worker.ShardAccumulator` (no per-edge
    tuple materialization); a fault plan needs an edge *sequence* to
    perturb, so that path rebuilds :class:`~repro.types.Edge` records
    from the columns before injecting.  Either way the view is closed
    before returning — a child never holds a mapping past its task.
    """
    tracer = RecordingTracer() if task.traced else NULL_TRACER
    worker = Worker(
        index=task.index,
        algorithm=task.algorithm,
        seed=task.seed,
        alpha=task.alpha,
        tracer=tracer,
    )
    view = SpanView(task.span) if task.span is not None else None
    try:
        if view is not None and not task.fault_specs:
            accumulator = ShardAccumulator(
                task.index,
                task.shape.n,
                task.shape.m,
                base_set_order=task.set_order,
            )
            accumulator.feed_columns(view.set_ids, view.elements)
            output = worker.run_accumulated(
                accumulator, instance_name=task.shape.name
            )
        else:
            edges: Sequence[Edge] = task.edges
            if view is not None:
                edges = [
                    Edge(s, u)
                    for s, u in zip(
                        view.set_ids.tolist(), view.elements.tolist()
                    )
                ]
            injection = None
            if task.fault_specs:
                edges, _, injection = apply_faults(
                    edges, task.shape.n, task.shape.m, task.fault_specs
                )
            output = worker.run(
                task.shape, edges, task.set_order, injection=injection
            )
    finally:
        if view is not None:
            view.close()
    trace_jsonl = tracer.to_jsonl() if task.traced else None
    return ShardEnvelope(
        index=task.index, output=output, trace_jsonl=trace_jsonl
    )


def execute_accumulated(
    accumulator: ShardAccumulator, task: ShardTask
) -> ShardEnvelope:
    """Run the algorithm pass over a shard ingested by streaming.

    The in-process twin of :func:`execute_shard_task`: the shard's
    edges were already fed (validated, membership built) into
    ``accumulator`` while routing was still in flight, so only the
    algorithm pass remains.  ``task`` carries the shard's static
    configuration; its ``edges`` are empty by construction.
    """
    tracer = RecordingTracer() if task.traced else NULL_TRACER
    worker = Worker(
        index=task.index,
        algorithm=task.algorithm,
        seed=task.seed,
        alpha=task.alpha,
        tracer=tracer,
    )
    output = worker.run_accumulated(accumulator, instance_name=task.shape.name)
    trace_jsonl = tracer.to_jsonl() if task.traced else None
    return ShardEnvelope(
        index=task.index, output=output, trace_jsonl=trace_jsonl
    )


AccumulatedJob = Tuple[ShardAccumulator, ShardTask]


class Backend:
    """Interface: execute shard tasks, slotting results by shard index.

    ``supports_streaming_accumulators`` says whether the backend can
    execute a shard straight from an in-memory
    :class:`~repro.distributed.worker.ShardAccumulator` (in-process
    backends can; the process backend needs a pickled task instead).
    ``wants_threaded_ingest`` says whether streaming ingest should
    drain shard queues on dedicated threads so routing and shard ingest
    genuinely overlap.
    """

    name = "abstract"
    supports_streaming_accumulators = True
    wants_threaded_ingest = False

    def run_tasks(
        self, tasks: Sequence[ShardTask], max_workers: int
    ) -> List[ShardEnvelope]:
        raise NotImplementedError

    def run_accumulated(
        self, jobs: Sequence[AccumulatedJob], max_workers: int
    ) -> List[ShardEnvelope]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _run_serially(tasks: Sequence[ShardTask]) -> List[ShardEnvelope]:
    return [execute_shard_task(task) for task in tasks]


class SerialBackend(Backend):
    """Shards run in the calling thread, in index order — the reference."""

    name = "serial"

    def run_tasks(
        self, tasks: Sequence[ShardTask], max_workers: int
    ) -> List[ShardEnvelope]:
        return _run_serially(tasks)

    def run_accumulated(
        self, jobs: Sequence[AccumulatedJob], max_workers: int
    ) -> List[ShardEnvelope]:
        return [execute_accumulated(acc, task) for acc, task in jobs]


class ThreadBackend(Backend):
    """Shards run on a thread pool (the pre-backend-layer behaviour).

    Results are slotted by shard index, never by completion order, so
    the pool size is operational only.
    """

    name = "thread"
    wants_threaded_ingest = True

    def run_tasks(
        self, tasks: Sequence[ShardTask], max_workers: int
    ) -> List[ShardEnvelope]:
        if max_workers == 1 or len(tasks) <= 1:
            return _run_serially(tasks)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(execute_shard_task, t) for t in tasks]
            return [future.result() for future in futures]

    def run_accumulated(
        self, jobs: Sequence[AccumulatedJob], max_workers: int
    ) -> List[ShardEnvelope]:
        if max_workers == 1 or len(jobs) <= 1:
            return [execute_accumulated(acc, task) for acc, task in jobs]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(execute_accumulated, acc, task)
                for acc, task in jobs
            ]
            return [future.result() for future in futures]


class ProcessBackend(Backend):
    """Shards run in child processes — CPU-bound shard work in parallel.

    Tasks cross the boundary pickled; algorithm names resolve against
    the registry inside the child; traces come back as serialized span
    cells.  With ``max_workers == 1`` the pool would buy nothing, so
    tasks run inline (the result is identical either way — that *is*
    the contract).

    By default the edge payloads do *not* travel in the pickle: they
    are staged once into a shared-memory segment and each task ships an
    O(1) :class:`~repro.distributed.shmem.ShardSpan` descriptor instead
    (:mod:`repro.distributed.shmem`).  Set ``REPRO_SHM=0`` (or pass
    ``use_shared_memory=False``) to force the classic pickled-edges
    path; platforms without :mod:`multiprocessing.shared_memory` fall
    back automatically.  ``last_shipping`` records what the most recent
    pooled dispatch physically serialized — operational metadata the
    executor copies onto the result.
    """

    name = "process"
    supports_streaming_accumulators = False

    def __init__(self, use_shared_memory: Optional[bool] = None) -> None:
        if use_shared_memory is None:
            env = os.environ.get("REPRO_SHM", "").strip().lower()
            use_shared_memory = env not in {"0", "false", "off", "no"}
        self.use_shared_memory = (
            bool(use_shared_memory) and shared_memory_available()
        )
        self.last_shipping: Optional[ShippingReport] = None

    def run_tasks(
        self, tasks: Sequence[ShardTask], max_workers: int
    ) -> List[ShardEnvelope]:
        if max_workers == 1 or len(tasks) <= 1:
            # Inline: nothing crosses a process boundary, nothing ships.
            self.last_shipping = None
            return _run_serially(tasks)
        shipped: Sequence[ShardTask] = tasks
        segment = None
        mode = "pickle"
        if self.use_shared_memory:
            shipped, segment = ship_tasks(tasks)
            if segment is not None:
                mode = "shared-memory"
        try:
            self.last_shipping = measure_shipping(shipped, mode, segment)
            pool_size = min(max_workers, len(shipped))
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                futures = [
                    pool.submit(execute_shard_task, t) for t in shipped
                ]
                return [future.result() for future in futures]
        finally:
            # Unlink even when a worker raised — the leak-safety contract.
            if segment is not None:
                segment.cleanup()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}"
            f"(use_shared_memory={self.use_shared_memory})"
        )

    def run_accumulated(
        self, jobs: Sequence[AccumulatedJob], max_workers: int
    ) -> List[ShardEnvelope]:
        raise InvalidParameterError(
            "backend",
            self.name,
            "cannot execute in-memory accumulators across a process "
            "boundary; stream ingest builds pickled tasks for this backend",
        )


#: Public name -> backend class.
BACKEND_REGISTRY: Dict[str, Type[Backend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def registered_backends() -> List[str]:
    """Registry names in deterministic (sorted) order."""
    return sorted(BACKEND_REGISTRY)


def make_backend(name: str) -> Backend:
    """Construct a registered execution backend by name."""
    try:
        cls = BACKEND_REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_backends())
        raise InvalidParameterError(
            "backend", name, f"known backends: {known}"
        ) from None
    return cls()


# -- fault-tolerant execution ----------------------------------------------

#: States a :class:`ShardOutcome` can end in.
SHARD_OK = "ok"
SHARD_CRASHED = "crashed"
SHARD_TIMED_OUT = "timed-out"


@dataclass(frozen=True)
class ShardOutcome:
    """The attempt history of one shard under fault-tolerant execution.

    ``completion_step`` is the logical step at which the shard's last
    attempt finished (successfully or not) on the simulated clock —
    attempt ``k`` starts where attempt ``k-1`` ended plus the backoff,
    and takes ``attempt_steps + straggle_steps`` steps.  ``error_type``
    and ``error_message`` are non-empty only for abandoned shards and
    name the typed error the quorum policy raises when it cannot
    proceed without the shard.
    """

    index: int
    state: str
    attempts: int
    completion_step: int
    error_type: str = ""
    error_message: str = ""

    @property
    def retried(self) -> bool:
        """True iff the shard needed more than one attempt."""
        return self.attempts > 1

    @property
    def abandoned(self) -> bool:
        """True iff every attempt failed and the output was lost."""
        return self.state != SHARD_OK

    def to_error(self, deadline_steps: Optional[int] = None, context: str = ""):
        """The typed error this abandoned outcome stands for."""
        from repro.errors import ShardCrashError, ShardTimeoutError

        if self.state == SHARD_CRASHED:
            return ShardCrashError(self.index, self.attempts, context=context)
        if self.state == SHARD_TIMED_OUT:
            return ShardTimeoutError(
                self.index,
                self.attempts,
                self.completion_step,
                deadline_steps if deadline_steps is not None else -1,
                context=context,
            )
        raise ValueError(f"shard[{self.index}] was not abandoned")


def run_tasks_with_recovery(
    backend: Backend,
    tasks: Sequence[ShardTask],
    max_workers: int,
    shard_faults: Optional[ShardFaultPlan] = None,
    max_attempts: int = 3,
    backoff_steps: int = 1,
    deadline_steps: Optional[int] = None,
    attempt_steps: int = 1,
    tracer=None,
) -> Tuple[List[Optional[ShardEnvelope]], List[ShardOutcome]]:
    """Execute shard tasks under per-shard retry-with-backoff.

    The fault model is *simulated before execution*: each shard's
    attempt history — crashes from its
    :class:`~repro.faults.shards.ShardFaultSpec`, straggler delays, and
    deadline misses — plays out on a logical clock, and only the tasks
    whose surviving attempt succeeds are executed, in **one**
    ``backend.run_tasks`` call so real parallelism is preserved.  A
    retried shard re-executes with
    :func:`~repro.analysis.runner.derive_retry_seed` applied to its
    pre-drawn seed (attempt 1 keeps the seed unchanged, so a fault-free
    plan reproduces the plain path bit-for-bit); an abandoned shard's
    slot holds ``None``.

    Returns ``(envelopes, outcomes)``: ``envelopes[i]`` corresponds to
    ``tasks[i]`` (``None`` when abandoned) and ``outcomes`` carries one
    :class:`ShardOutcome` per task, in task order.
    """
    # Imported here, not at module scope: repro.analysis re-exports the
    # chaos harness, which imports this package — a module-level import
    # would be circular.
    from repro.analysis.runner import derive_retry_seed

    tracer = tracer if tracer is not None else NULL_TRACER
    if max_attempts < 1:
        raise InvalidParameterError(
            "max_attempts", max_attempts, "must be >= 1"
        )
    if backoff_steps < 0:
        raise InvalidParameterError(
            "backoff_steps", backoff_steps, "must be >= 0"
        )
    if attempt_steps < 1:
        raise InvalidParameterError(
            "attempt_steps", attempt_steps, "must be >= 1"
        )
    if deadline_steps is not None and deadline_steps < 1:
        raise InvalidParameterError(
            "deadline_steps", deadline_steps, "must be >= 1 (or None)"
        )
    plan = shard_faults if shard_faults is not None else ShardFaultPlan()

    to_run: List[ShardTask] = []
    run_slots: List[int] = []
    outcomes: List[ShardOutcome] = []
    for slot, task in enumerate(tasks):
        spec = plan.spec_for(task.index)
        start = 0
        state = SHARD_OK
        finish = 0
        attempt = 0
        for attempt in range(1, max_attempts + 1):
            finish = start + attempt_steps + spec.straggle_steps
            if attempt <= spec.crash_attempts:
                state = SHARD_CRASHED
            elif deadline_steps is not None and finish > deadline_steps:
                state = SHARD_TIMED_OUT
            else:
                state = SHARD_OK
                break
            if attempt < max_attempts and tracer.enabled:
                tracer.event(
                    SHARD_RETRY,
                    shard=task.index,
                    attempt=attempt,
                    reason=state,
                    step=finish,
                )
            start = finish + backoff_steps
        if state == SHARD_OK:
            seed = derive_retry_seed(task.seed, attempt)
            to_run.append(
                task if seed == task.seed else replace(task, seed=seed)
            )
            run_slots.append(slot)
            outcomes.append(
                ShardOutcome(
                    index=task.index,
                    state=SHARD_OK,
                    attempts=attempt,
                    completion_step=finish,
                )
            )
        else:
            outcome = ShardOutcome(
                index=task.index,
                state=state,
                attempts=max_attempts,
                completion_step=finish,
            )
            error = outcome.to_error(deadline_steps=deadline_steps)
            outcomes.append(
                replace(
                    outcome,
                    error_type=type(error).__name__,
                    error_message=str(error),
                )
            )
            if tracer.enabled:
                tracer.event(
                    SHARD_ABANDONED,
                    shard=task.index,
                    attempts=max_attempts,
                    reason=state,
                    step=finish,
                )

    envelopes: List[Optional[ShardEnvelope]] = [None] * len(tasks)
    if to_run:
        for slot, envelope in zip(run_slots, backend.run_tasks(to_run, max_workers)):
            envelopes[slot] = envelope
    return envelopes, outcomes
