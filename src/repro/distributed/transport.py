"""Pluggable wire transports: turning metered words into measured bytes.

:class:`~repro.distributed.comm.CommMeter` charges idealised machine
*words* on abstract links — the currency of Theorem 2 — but nothing
ever crosses a wire, so the comm report cannot be validated against
physical bytes and transport-level faults (partitions, retransmits)
are unreachable.  This module adds the missing layer: every message a
coordinator charges also travels, as real serialized bytes, through a
registered :class:`Transport`:

``inproc``
    Zero-copy, the default.  The payload is framed once to *measure*
    its wire size, then delivered by reference — today's behaviour
    with a byte count attached.
``loopback``
    An in-memory channel driven by the
    :class:`~repro.distributed.asyncsim.AsyncScheduler` logical clock,
    with seeded per-link latency, jitter, and partition/drop injection.
    Frames are encoded, carried through the scheduler, and decoded on
    delivery; a partitioned link retransmits up to ``max_retries``
    times and then raises a typed
    :class:`~repro.errors.TransportPartitionError`.
``socket``
    Real TCP over localhost.  A background acceptor thread owns the
    listening socket; senders hold one connection per link and ship
    length-prefixed frames, which the receiver side decodes and hands
    back.  Connection failures retransmit; a sandbox that forbids
    binding raises :class:`~repro.errors.TransportError` at
    construction, which callers (the parity gate, the bench) treat as
    a graceful skip.

Wire format (shared by every transport, so their byte counts are
comparable)::

    4 bytes  magic  b"RPWT"
    1 byte   codec tag (1 = pickle, 2 = msgpack)
    4 bytes  payload length, big-endian
    N bytes  codec-encoded payload

Payloads themselves are built by the ``*_wire`` helpers below: pure
``str -> int | bytes`` dicts whose id sequences are packed as
big-endian **int64** arrays — one machine word, eight bytes.  That
packing is what makes the words/bytes comparison honest: a message of
``w`` metered words carries at least ``8·w`` payload bytes (the chain's
two-words-per-key charge is mirrored by a two-int64 encoding per key),
so ``TransportReport.overhead_ratio >= 1`` is a structural property,
not a measurement accident.

The codec is msgpack when the interpreter has it, pickle otherwise
(both handle the primitive wire dicts); requesting ``msgpack``
explicitly on an interpreter without it is a typed
:class:`~repro.errors.TransportError`.

Determinism and parity: a transport never changes *what* is computed —
coordinators consume the **delivered** payload, so the parity gate
(``scripts/check_transport_parity.py``) proves covers, certificates,
and comm reports byte-identical across all three transports, while the
:class:`TransportReport` (attached to
:attr:`~repro.distributed.executor.DistributedResult.transport`,
excluded from equality like ``shipping``/``ingest``) records what the
wire actually carried: per-link bytes, frames, and retransmits.
"""

from __future__ import annotations

import pickle
import queue
import socket as socket_module
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

from repro.distributed.comm import link_label
from repro.errors import (
    InvalidParameterError,
    TransportError,
    TransportPartitionError,
)
from repro.types import SeedLike, make_rng

WIRE_MAGIC = b"RPWT"
_HEADER = struct.Struct("!4sBI")
#: Size of the fixed frame header, public for stream readers that pull
#: the header and payload off a byte stream separately (the socket
#: transport's read loop, the serve protocol's asyncio reader).
FRAME_HEADER_SIZE = _HEADER.size
#: Bytes per idealised machine word (int64) on the wire.
WORD_BYTES = 8


def parse_frame_header(header: bytes) -> Tuple[int, int]:
    """Parse the fixed frame header into ``(codec tag, payload length)``.

    Validates size and magic with the same typed errors
    :func:`decode_frame` raises, so incremental stream readers reject
    bad wire data identically to whole-frame decoders.
    """
    if len(header) != _HEADER.size:
        raise TransportError(
            f"frame header of {len(header)} bytes, expected {_HEADER.size}"
        )
    magic, tag, length = _HEADER.unpack(header)
    if magic != WIRE_MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    return tag, length


# -- word packing -----------------------------------------------------------


def pack_words(values: Iterable[int]) -> bytes:
    """Pack integer ids as big-endian int64 — eight bytes per word."""
    seq = list(values)
    return struct.pack(f"!{len(seq)}q", *seq)


def unpack_words(data: bytes) -> List[int]:
    """Inverse of :func:`pack_words`."""
    count, remainder = divmod(len(data), WORD_BYTES)
    if remainder:
        raise TransportError(
            f"packed word field of {len(data)} bytes is not a multiple of "
            f"{WORD_BYTES}"
        )
    return list(struct.unpack(f"!{count}q", data))


# -- codecs -----------------------------------------------------------------


class Codec:
    """Serializer for wire payloads (pure ``str -> int | bytes`` dicts)."""

    name = "abstract"
    tag = 0

    def encode(self, payload: object) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> object:
        raise NotImplementedError


class PickleCodec(Codec):
    """The always-available codec; deterministic for the wire dicts."""

    name = "pickle"
    tag = 1

    def encode(self, payload: object) -> bytes:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> object:
        return pickle.loads(data)


class MsgpackCodec(Codec):
    """Msgpack codec, gated on the interpreter actually having msgpack."""

    name = "msgpack"
    tag = 2

    def __init__(self) -> None:
        try:
            import msgpack
        except ImportError:
            raise TransportError(
                "msgpack codec requested but msgpack is not installed; "
                "use the pickle codec"
            ) from None
        self._msgpack = msgpack

    def encode(self, payload: object) -> bytes:
        return self._msgpack.packb(payload, use_bin_type=True)

    def decode(self, data: bytes) -> object:
        return self._msgpack.unpackb(data, raw=False)


#: Codec name -> class; tag -> class for frame decoding.
CODEC_REGISTRY: Dict[str, Type[Codec]] = {
    "pickle": PickleCodec,
    "msgpack": MsgpackCodec,
}
_CODEC_BY_TAG: Dict[int, Type[Codec]] = {
    cls.tag: cls for cls in CODEC_REGISTRY.values()
}


def msgpack_available() -> bool:
    """Whether this interpreter can import msgpack."""
    try:
        import msgpack  # noqa: F401
    except ImportError:
        return False
    return True


def make_codec(name: Optional[str] = None) -> Codec:
    """Construct a codec by name; ``None`` prefers msgpack, falls back
    to pickle — the "msgpack-or-pickle" default."""
    if name is None:
        return MsgpackCodec() if msgpack_available() else PickleCodec()
    try:
        cls = CODEC_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CODEC_REGISTRY))
        raise InvalidParameterError(
            "codec", name, f"known codecs: {known}"
        ) from None
    return cls()


# -- framing ----------------------------------------------------------------


def encode_frame(codec: Codec, payload: object) -> bytes:
    """Length-prefix one codec-encoded payload."""
    body = codec.encode(payload)
    return _HEADER.pack(WIRE_MAGIC, codec.tag, len(body)) + body


def decode_frame(frame: bytes) -> object:
    """Parse one frame back to its payload; typed errors on bad wire."""
    if len(frame) < _HEADER.size:
        raise TransportError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{_HEADER.size}-byte header"
        )
    magic, tag, length = _HEADER.unpack(frame[: _HEADER.size])
    if magic != WIRE_MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    body = frame[_HEADER.size :]
    if len(body) != length:
        raise TransportError(
            f"frame announces {length} payload bytes but carries {len(body)}"
        )
    try:
        codec = _CODEC_BY_TAG[tag]()
    except KeyError:
        raise TransportError(f"unknown codec tag {tag}") from None
    return codec.decode(body)


# -- wire payload schemas ---------------------------------------------------
#
# One builder/reader pair per message kind the coordinators send.  Id
# sequences travel as packed int64 arrays so payload bytes track metered
# words exactly; the readers return the same deterministic orders the
# pre-transport merge code iterated in, which is what keeps the merge
# result independent of the transport.


def cover_upload_wire(
    index: int,
    cover: Iterable[int],
    certificate: Mapping[int, int],
) -> Dict[str, object]:
    """A shard's (cover, certificate) upload — the union merge's input."""
    pairs: List[int] = []
    for u, s in sorted(certificate.items()):
        pairs.append(u)
        pairs.append(s)
    return {
        "kind": "cover",
        "index": index,
        "cover": pack_words(sorted(cover)),
        "certificate": pack_words(pairs),
    }


def read_cover_upload(
    payload: Mapping[str, object]
) -> Tuple[int, List[int], List[Tuple[int, int]]]:
    """``(index, cover ids, sorted (element, witness) pairs)``."""
    flat = unpack_words(payload["certificate"])  # type: ignore[arg-type]
    pairs = list(zip(flat[0::2], flat[1::2]))
    return (
        int(payload["index"]),  # type: ignore[arg-type]
        unpack_words(payload["cover"]),  # type: ignore[arg-type]
        pairs,
    )


def candidate_upload_wire(
    index: int,
    cover: Iterable[int],
    members_by_set: Mapping[int, Iterable[int]],
) -> Dict[str, object]:
    """A shard's candidate-set upload — the greedy merge's input."""
    sids = sorted(cover)
    counts: List[int] = []
    members: List[int] = []
    for sid in sids:
        view = sorted(members_by_set.get(sid, ()))
        counts.append(len(view))
        members.extend(view)
    return {
        "kind": "candidates",
        "index": index,
        "sets": pack_words(sids),
        "counts": pack_words(counts),
        "members": pack_words(members),
    }


def read_candidate_upload(
    payload: Mapping[str, object]
) -> Tuple[int, List[Tuple[int, List[int]]]]:
    """``(index, [(set id, observed members)...])`` in sorted-set order."""
    sids = unpack_words(payload["sets"])  # type: ignore[arg-type]
    counts = unpack_words(payload["counts"])  # type: ignore[arg-type]
    members = unpack_words(payload["members"])  # type: ignore[arg-type]
    out: List[Tuple[int, List[int]]] = []
    offset = 0
    for sid, count in zip(sids, counts):
        out.append((sid, members[offset : offset + count]))
        offset += count
    return int(payload["index"]), out  # type: ignore[arg-type]


def handoff_wire(
    hop: int,
    uncovered: Iterable[int],
    witnesses: Iterable[Tuple[int, int]],
    chosen: Iterable[int],
) -> Dict[str, object]:
    """One chain hand-off: the forwarded protocol state.

    A chosen key is charged at *two* words by
    :func:`~repro.distributed.chain.state_words` (keys may be composite
    in the abstract protocol), so it is encoded as two int64s here —
    the wire mirrors the accounting, keeping payload bytes ≥ 8 × words.
    """
    flat_witnesses: List[int] = []
    for u, s in witnesses:
        flat_witnesses.append(u)
        flat_witnesses.append(s)
    flat_chosen: List[int] = []
    for key in chosen:
        flat_chosen.append(0)
        flat_chosen.append(key)
    return {
        "kind": "handoff",
        "hop": hop,
        "uncovered": pack_words(sorted(uncovered)),
        "witnesses": pack_words(flat_witnesses),
        "chosen": pack_words(flat_chosen),
    }


def tree_handoff_wire(
    round_index: int,
    src: int,
    dst: int,
    uncovered: Iterable[int],
    witnesses: Iterable[Tuple[int, int]],
    chosen: Iterable[int],
) -> Dict[str, object]:
    """One tournament hand-off: a subtree's state shipped to its peer.

    Same packed state fields as :func:`handoff_wire` — the tournament
    forwards the identical (uncovered, witnesses, chosen) structure, so
    :func:`handoff_words` verifies either kind — with the tree position
    (``round``, ``src``, ``dst``) in place of the chain's ``hop``.
    """
    flat_witnesses: List[int] = []
    for u, s in witnesses:
        flat_witnesses.append(u)
        flat_witnesses.append(s)
    flat_chosen: List[int] = []
    for key in chosen:
        flat_chosen.append(0)
        flat_chosen.append(key)
    return {
        "kind": "tree-handoff",
        "round": round_index,
        "src": src,
        "dst": dst,
        "uncovered": pack_words(sorted(uncovered)),
        "witnesses": pack_words(flat_witnesses),
        "chosen": pack_words(flat_chosen),
    }


def handoff_words(payload: Mapping[str, object]) -> int:
    """Recompute a hand-off's word count from its wire form.

    Equals :func:`~repro.distributed.chain.state_words` of the state
    that built the payload — works on chain (:func:`handoff_wire`) and
    tree (:func:`tree_handoff_wire`) hand-offs alike, since both pack
    the same three state fields.  The coordinators assert this against
    the words they charged, an end-to-end integrity check that the
    bytes delivered really are the state forwarded.
    """
    return (
        len(payload["uncovered"])  # type: ignore[arg-type]
        + len(payload["witnesses"])  # type: ignore[arg-type]
        + len(payload["chosen"])  # type: ignore[arg-type]
    ) // WORD_BYTES


# -- transport report -------------------------------------------------------


@dataclass(frozen=True)
class TransportReport:
    """What one merge's messages physically put on the wire.

    Operational metadata like
    :class:`~repro.distributed.shmem.ShippingReport`: attached to
    :attr:`DistributedResult.transport <repro.distributed.executor.DistributedResult>`
    but excluded from result equality — the transport must never change
    what is computed, only measure how it moved.  ``total_bytes`` counts
    every transmitted frame including retransmitted ones;
    ``payload_bytes`` is the codec output alone, so
    ``total_bytes - payload_bytes`` is pure framing overhead.
    """

    transport: str
    codec: str
    total_bytes: int
    total_frames: int
    payload_bytes: int
    retransmits: int
    metered_words: int
    per_link_bytes: Dict[str, int] = field(default_factory=dict)
    per_link_frames: Dict[str, int] = field(default_factory=dict)
    per_link_retransmits: Dict[str, int] = field(default_factory=dict)
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def overhead_ratio(self) -> float:
        """Measured wire bytes over the int64 size of the metered words.

        ≥ 1.0 by construction of the wire format: every metered word
        travels as at least one int64 plus framing/codec structure.
        """
        if self.metered_words <= 0:
            return 0.0
        return self.total_bytes / (WORD_BYTES * self.metered_words)

    def link_bytes(self, src: str, dst: str) -> int:
        """Wire bytes carried on the ``src->dst`` link (0 if unused)."""
        return self.per_link_bytes.get(link_label(src, dst), 0)

    def link_frames(self, src: str, dst: str) -> int:
        """Frames carried on the ``src->dst`` link (0 if unused)."""
        return self.per_link_frames.get(link_label(src, dst), 0)


# -- transports -------------------------------------------------------------


class Transport:
    """Interface: move one coordinator message as real bytes.

    :meth:`send` encodes ``payload`` with the transport's codec, moves
    the frame through the medium, and returns the *delivered* payload —
    coordinators consume the return value, so the wire sits on the data
    path, not beside it.  Accounting (bytes, frames, retransmits per
    link) accumulates on the transport; :meth:`report` snapshots it.
    """

    name = "abstract"

    def __init__(self, codec: Optional[str] = None) -> None:
        self.codec = make_codec(codec)
        self._per_link_bytes: Dict[str, int] = {}
        self._per_link_frames: Dict[str, int] = {}
        self._per_link_retransmits: Dict[str, int] = {}
        self._total_bytes = 0
        self._total_frames = 0
        self._payload_bytes = 0
        self._retransmits = 0

    # -- accounting ------------------------------------------------------

    def _record(
        self, link: str, frame_bytes: int, retransmit: bool = False
    ) -> None:
        """Charge one transmitted frame (retransmissions included)."""
        self._per_link_bytes[link] = (
            self._per_link_bytes.get(link, 0) + frame_bytes
        )
        self._per_link_frames[link] = self._per_link_frames.get(link, 0) + 1
        self._total_bytes += frame_bytes
        self._total_frames += 1
        self._payload_bytes += frame_bytes - _HEADER.size
        if retransmit:
            self._per_link_retransmits[link] = (
                self._per_link_retransmits.get(link, 0) + 1
            )
            self._retransmits += 1

    def _diagnostics(self) -> Dict[str, float]:
        """Transport-specific report diagnostics; override to extend."""
        return {}

    def report(self, metered_words: int = 0) -> TransportReport:
        """Snapshot the wire accounting (pair with the comm report)."""
        return TransportReport(
            transport=self.name,
            codec=self.codec.name,
            total_bytes=self._total_bytes,
            total_frames=self._total_frames,
            payload_bytes=self._payload_bytes,
            retransmits=self._retransmits,
            metered_words=metered_words,
            per_link_bytes=dict(self._per_link_bytes),
            per_link_frames=dict(self._per_link_frames),
            per_link_retransmits=dict(self._per_link_retransmits),
            diagnostics=self._diagnostics(),
        )

    # -- lifecycle -------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: object) -> object:
        raise NotImplementedError

    def close(self) -> None:
        """Release any sockets/threads; idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(codec={self.codec.name!r})"


class InprocTransport(Transport):
    """Zero-copy delivery with measured framing — the default.

    The payload is framed once so the report carries the exact bytes a
    wire transport would have moved, then delivered *by reference*: no
    decode, no copy, today's in-process behaviour byte for byte.
    """

    name = "inproc"

    def send(self, src: str, dst: str, kind: str, payload: object) -> object:
        frame = encode_frame(self.codec, payload)
        self._record(link_label(src, dst), len(frame))
        return payload


class LoopbackTransport(Transport):
    """In-memory channel on the async scheduler's logical clock.

    Every frame becomes a scheduler message with its configured link
    delay plus seeded jitter; the transport drains the scheduler and
    decodes the delivered frame, so the logical clock measures the
    merge's wire latency in the same units PR 7's simulator uses.
    Fault injection: links named in ``partitioned`` drop every frame,
    and ``drop_rate`` drops each transmission independently (seeded) —
    both retransmit up to ``max_retries`` extra times before raising
    :class:`~repro.errors.TransportPartitionError`.  Dropped frames
    still count toward bytes/frames: a real NIC transmits them too.
    """

    name = "loopback"

    def __init__(
        self,
        codec: Optional[str] = None,
        seed: SeedLike = 0,
        link_delays: Optional[Mapping[str, int]] = None,
        default_delay: int = 1,
        jitter: int = 0,
        drop_rate: float = 0.0,
        partitioned: Sequence[str] = (),
        max_retries: int = 3,
    ) -> None:
        super().__init__(codec)
        if jitter < 0:
            raise InvalidParameterError("jitter", jitter, "must be >= 0")
        if not 0.0 <= drop_rate < 1.0:
            raise InvalidParameterError(
                "drop_rate", drop_rate, "must be in [0, 1)"
            )
        if max_retries < 0:
            raise InvalidParameterError(
                "max_retries", max_retries, "must be >= 0"
            )
        # Imported lazily: asyncsim imports the coordinator module,
        # which imports us — a module-level import would be circular.
        from repro.distributed.asyncsim import AsyncScheduler

        self._scheduler = AsyncScheduler(
            link_delays=link_delays, default_delay=default_delay
        )
        self._rng = make_rng(seed)
        self.jitter = jitter
        self.drop_rate = drop_rate
        self.partitioned = frozenset(partitioned)
        self.max_retries = max_retries

    def send(self, src: str, dst: str, kind: str, payload: object) -> object:
        frame = encode_frame(self.codec, payload)
        link = link_label(src, dst)
        for attempt in range(self.max_retries + 1):
            self._record(link, len(frame), retransmit=attempt > 0)
            dropped = link in self.partitioned or (
                self.drop_rate > 0.0 and self._rng.random() < self.drop_rate
            )
            if dropped:
                continue
            delay = self._scheduler.link_delay(src, dst)
            if self.jitter:
                delay += self._rng.randrange(self.jitter + 1)
            self._scheduler.post(
                src,
                dst,
                kind=kind,
                words=len(frame),
                payload=frame,
                available_step=self._scheduler.clock + delay,
            )
            delivered = self._scheduler.drain()[-1]
            return decode_frame(delivered.payload)
        raise TransportPartitionError(link, self.max_retries + 1)

    @property
    def clock(self) -> int:
        """The scheduler's logical clock after the frames so far."""
        return self._scheduler.clock

    def _diagnostics(self) -> Dict[str, float]:
        return {
            "logical_clock": float(self._scheduler.clock),
            "idle_ticks": float(self._scheduler.idle_ticks),
        }


def _recv_exactly(conn: socket_module.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError``."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class SocketTransport(Transport):
    """Real TCP over localhost with length-prefixed frames.

    One listening socket per transport (bound eagerly, so a sandbox
    that forbids binding fails fast with a typed
    :class:`~repro.errors.TransportError` callers can treat as a
    skip); one cached client connection per link; a background
    acceptor thread spawns a reader per connection that decodes frames
    and hands them back through a queue.  Sends are serialized under a
    lock — coordinator merges are sequential, and the lock keeps the
    request/response pairing trivially correct if they ever are not.
    A send that hits a connection error reconnects and retransmits up
    to ``max_retries`` extra times.
    """

    name = "socket"

    def __init__(
        self,
        codec: Optional[str] = None,
        host: str = "127.0.0.1",
        timeout: float = 10.0,
        max_retries: int = 2,
    ) -> None:
        super().__init__(codec)
        if max_retries < 0:
            raise InvalidParameterError(
                "max_retries", max_retries, "must be >= 0"
            )
        self.host = host
        self.timeout = timeout
        self.max_retries = max_retries
        self._closed = False
        self._clients: Dict[str, socket_module.socket] = {}
        self._received: "queue.Queue[object]" = queue.Queue()
        self._lock = threading.Lock()
        try:
            server = socket_module.socket(
                socket_module.AF_INET, socket_module.SOCK_STREAM
            )
            server.bind((host, 0))
            server.listen(16)
        except OSError as exc:
            raise TransportError(
                f"socket transport cannot bind on {host}: {exc}"
            ) from exc
        self._server = server
        self.port = server.getsockname()[1]
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-transport-accept", daemon=True
        )
        self._acceptor.start()

    # -- receive side ----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return  # closed
            reader = threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name="repro-transport-read",
                daemon=True,
            )
            reader.start()

    def _read_loop(self, conn: socket_module.socket) -> None:
        try:
            while True:
                header = _recv_exactly(conn, FRAME_HEADER_SIZE)
                _, length = parse_frame_header(header)
                body = _recv_exactly(conn, length)
                self._received.put(decode_frame(header + body))
        except (ConnectionError, OSError):
            pass
        finally:
            conn.close()

    # -- send side -------------------------------------------------------

    def _client_for(self, link: str) -> socket_module.socket:
        client = self._clients.get(link)
        if client is None:
            client = socket_module.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._clients[link] = client
        return client

    def send(self, src: str, dst: str, kind: str, payload: object) -> object:
        if self._closed:
            raise TransportError("socket transport is closed")
        frame = encode_frame(self.codec, payload)
        link = link_label(src, dst)
        with self._lock:
            for attempt in range(self.max_retries + 1):
                try:
                    client = self._client_for(link)
                    client.sendall(frame)
                    self._record(link, len(frame), retransmit=attempt > 0)
                    return self._received.get(timeout=self.timeout)
                except (ConnectionError, OSError, queue.Empty):
                    stale = self._clients.pop(link, None)
                    if stale is not None:
                        stale.close()
        raise TransportPartitionError(link, self.max_retries + 1)

    def _diagnostics(self) -> Dict[str, float]:
        return {"port": float(self.port)}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for client in self._clients.values():
            try:
                client.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._clients.clear()
        try:
            self._server.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass


#: Public name -> transport class.
TRANSPORT_REGISTRY: Dict[str, Type[Transport]] = {
    "inproc": InprocTransport,
    "loopback": LoopbackTransport,
    "socket": SocketTransport,
}


def registered_transports() -> List[str]:
    """Registry names in deterministic (sorted) order."""
    return sorted(TRANSPORT_REGISTRY)


def make_transport(
    name: str,
    codec: Optional[str] = None,
    seed: SeedLike = 0,
    **options: object,
) -> Transport:
    """Construct a registered transport by name.

    ``seed`` feeds the loopback transport's jitter/drop RNG and is
    ignored by the deterministic transports; extra keyword options go
    to the transport constructor (e.g. ``drop_rate`` for loopback).
    """
    try:
        cls = TRANSPORT_REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_transports())
        raise InvalidParameterError(
            "transport", name, f"known transports: {known}"
        ) from None
    if cls is LoopbackTransport:
        return LoopbackTransport(codec=codec, seed=seed, **options)  # type: ignore[arg-type]
    return cls(codec=codec, **options)  # type: ignore[arg-type]
