"""Partitioning an ordered edge stream across simulated workers.

A :class:`ShardRouter` splits one arrival-ordered edge sequence into
``W`` shard-local sequences, preserving the global arrival order inside
every shard.  Three strategies:

``by-set``
    Sets are dealt to workers round-robin over a seeded shuffle — the
    *reference* partition of the deterministic t-party protocol
    (:func:`repro.lowerbound.simple_protocol.split_instance_among_parties`
    delegates to the same deal), so every edge of a set lands on one
    worker and that worker knows the set's membership exactly.  This is
    the partition under which the chain merge reproduces the protocol
    bit-for-bit.
``by-element``
    Elements are dealt the same way; a set's edges scatter, so workers
    hold *partial* membership views (the merge-friendly-sketch regime of
    distributed coverage).
``hash``
    Each edge is routed independently by a seeded splitmix64-style hash
    of ``(set_id, element)`` — the maximally scattered baseline.

Routing is a pure function of ``(edges, strategy, workers, seed)``:
no global RNG, no dependence on thread counts, so the distributed
determinism contract starts here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.stream import EdgeStream, FrozenEdges
from repro.types import Edge, SeedLike, make_rng

#: Every routing strategy :class:`ShardRouter` understands.
STRATEGIES: Tuple[str, ...] = ("by-set", "by-element", "hash")

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit integer mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def edge_hash_worker(set_id: int, element: int, workers: int, seed: int) -> int:
    """Deterministic worker index for one edge under the hash strategy.

    Python's builtin ``hash`` is salted per process; this mix is not, so
    the partition is reproducible across runs and machines.
    """
    return _splitmix64(_splitmix64(seed ^ (set_id << 1)) ^ element) % workers


def _splitmix64_columns(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_splitmix64` over a ``uint64`` column.

    Bit-for-bit identical to the scalar mix (``uint64`` arithmetic wraps
    modulo 2**64 exactly like the scalar's explicit masking), so the
    chunked streaming router and the materializing router agree on
    every edge's worker.
    """
    values = values + np.uint64(0x9E3779B97F4A7C15)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def edge_hash_workers_columns(
    set_ids: np.ndarray, elements: np.ndarray, workers: int, seed: int
) -> np.ndarray:
    """Vectorized :func:`edge_hash_worker` over edge columns.

    Takes the ``int64`` column pair of a
    :class:`~repro.streaming.stream.FrozenEdges` buffer and returns an
    ``int64`` worker index per edge, identical to calling the scalar
    function edge by edge (property-tested).
    """
    seed_word = np.uint64(seed & _MASK64)
    inner = _splitmix64_columns(
        seed_word ^ (set_ids.astype(np.uint64) << np.uint64(1))
    )
    outer = _splitmix64_columns(inner ^ elements.astype(np.uint64))
    return (outer % np.uint64(workers)).astype(np.int64)


def deal_round_robin(
    num_items: int, workers: int, seed: SeedLike = None
) -> Tuple[List[int], List[List[int]]]:
    """Deal ``range(num_items)`` to ``workers`` round-robin (seeded shuffle).

    Returns ``(assignment, per_worker)``: ``assignment[item]`` is the
    worker owning ``item``, and ``per_worker[w]`` lists worker ``w``'s
    items *in deal order* — the order the t-party protocol enumerates a
    party's sets, which the chain merge must reproduce.  Workers beyond
    ``num_items`` simply receive empty shares; they are legal (an empty
    party forwards protocol state untouched).
    """
    if workers < 1:
        raise ConfigurationError(f"need at least 1 worker, got {workers}")
    if num_items < 0:
        raise ConfigurationError(f"num_items must be >= 0, got {num_items}")
    rng = make_rng(seed)
    order = list(range(num_items))
    rng.shuffle(order)
    assignment = [0] * num_items
    per_worker: List[List[int]] = [[] for _ in range(workers)]
    for position, item in enumerate(order):
        worker = position % workers
        assignment[item] = worker
        per_worker[worker].append(item)
    return assignment, per_worker


@dataclass(frozen=True)
class ShardPlan:
    """The output of routing: per-shard edge sequences plus metadata.

    Attributes
    ----------
    strategy, workers, seed:
        The routing configuration that produced the plan.
    shard_edges:
        ``shard_edges[w]`` is worker ``w``'s edge sequence, preserving
        global arrival order.  The shards are a disjoint, exhaustive
        partition of the routed edges.
    set_order:
        ``set_order[w]`` lists the set ids worker ``w`` is responsible
        for, in the order the chain merge enumerates them: the deal
        order for ``by-set`` (including dealt sets that have no edges),
        first-appearance order in the shard stream otherwise.
    order_name:
        Label of the arrival order the routed edges came from.
    """

    strategy: str
    workers: int
    seed: int
    shard_edges: Tuple[Tuple[Edge, ...], ...]
    set_order: Tuple[Tuple[int, ...], ...]
    order_name: str = "canonical"

    @property
    def total_edges(self) -> int:
        """Number of edges across all shards."""
        return sum(len(edges) for edges in self.shard_edges)

    def shard_sizes(self) -> Tuple[int, ...]:
        """Edge count per shard, by worker index."""
        return tuple(len(edges) for edges in self.shard_edges)


class ShardRouter:
    """Routes an ordered edge sequence to ``workers`` simulated shards."""

    def __init__(
        self, strategy: str = "by-set", workers: int = 2, seed: int = 0
    ) -> None:
        if strategy not in STRATEGIES:
            known = ", ".join(STRATEGIES)
            raise ConfigurationError(
                f"unknown shard strategy {strategy!r}; known strategies: {known}"
            )
        if workers < 1:
            raise ConfigurationError(f"need at least 1 worker, got {workers}")
        self.strategy = strategy
        self.workers = workers
        self.seed = seed

    def route_edges(
        self,
        instance: SetCoverInstance,
        edges: Sequence[Edge],
        order_name: str = "canonical",
    ) -> ShardPlan:
        """Partition ``edges`` (an ordering of ``instance``) into shards."""
        workers = self.workers
        buckets: List[List[Edge]] = [[] for _ in range(workers)]
        if self.strategy == "by-set":
            assignment, per_worker = deal_round_robin(
                instance.m, workers, seed=self.seed
            )
            for edge in edges:
                buckets[assignment[edge[0]]].append(edge)
            set_order = tuple(tuple(items) for items in per_worker)
        elif self.strategy == "by-element":
            assignment, _ = deal_round_robin(instance.n, workers, seed=self.seed)
            for edge in edges:
                buckets[assignment[edge[1]]].append(edge)
            set_order = _first_appearance_sets(buckets)
        else:  # hash
            seed = self.seed
            for edge in edges:
                buckets[edge_hash_worker(edge[0], edge[1], workers, seed)].append(
                    edge
                )
            set_order = _first_appearance_sets(buckets)
        return ShardPlan(
            strategy=self.strategy,
            workers=workers,
            seed=self.seed,
            shard_edges=tuple(tuple(bucket) for bucket in buckets),
            set_order=set_order,
            order_name=order_name,
        )

    def route_stream(self, stream: EdgeStream) -> ShardPlan:
        """Partition an *unconsumed* one-pass stream into shards.

        The source stream is marked consumed (its one and only pass is
        spent on the routing read), mirroring the fault injector's
        discipline — the shard streams are the only live views.
        """
        edges = stream.peek_all()
        stream.reader()  # spend the stream's single pass on the routing read
        return self.route_edges(
            stream.instance, edges, order_name=stream.order_name
        )

    def chunk_assigner(self, instance: SetCoverInstance) -> "ChunkAssigner":
        """A vectorized edge→worker mapper for the streaming ingest path.

        Precomputes the strategy's assignment lookup once (the deal
        tables for ``by-set``/``by-element``; nothing for ``hash``,
        which is stateless) so every chunk routes with a handful of
        numpy operations instead of a Python loop per edge.
        """
        return ChunkAssigner(self, instance)

    def __repr__(self) -> str:
        return (
            f"ShardRouter(strategy={self.strategy!r}, workers={self.workers}, "
            f"seed={self.seed})"
        )


class ChunkAssigner:
    """Routes chunked column batches of an edge ordering to shards.

    The streaming counterpart of :meth:`ShardRouter.route_edges`: the
    same pure function of ``(edges, strategy, workers, seed)``, applied
    one chunk at a time over the shared
    :class:`~repro.streaming.stream.FrozenEdges` columns so the ingest
    layer never materializes per-shard edge lists up front.

    ``base_set_orders`` is the part of the shard plan that exists
    *before* any edge arrives: the deal order under ``by-set`` routing
    (including dealt sets that never see an edge).  For the
    first-appearance strategies it is ``None`` — the per-shard
    accumulators discover their set order as chunks arrive, which
    reproduces :func:`_first_appearance_sets` exactly.
    """

    def __init__(self, router: ShardRouter, instance: SetCoverInstance) -> None:
        self.strategy = router.strategy
        self.workers = router.workers
        self.seed = router.seed
        self.base_set_orders: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._table: Optional[np.ndarray] = None
        if self.strategy == "by-set":
            assignment, per_worker = deal_round_robin(
                instance.m, self.workers, seed=self.seed
            )
            self._table = np.asarray(assignment, dtype=np.int64)
            self.base_set_orders = tuple(tuple(items) for items in per_worker)
        elif self.strategy == "by-element":
            assignment, _ = deal_round_robin(
                instance.n, self.workers, seed=self.seed
            )
            self._table = np.asarray(assignment, dtype=np.int64)

    def assign(
        self, set_ids: np.ndarray, elements: np.ndarray
    ) -> np.ndarray:
        """Worker index per edge for one column chunk."""
        if self.strategy == "by-set":
            return self._table[set_ids]
        if self.strategy == "by-element":
            return self._table[elements]
        return edge_hash_workers_columns(
            set_ids, elements, self.workers, self.seed
        )

    def iter_chunks(
        self, edges: Sequence[Edge], chunk_size: int
    ) -> Iterator[List[Tuple[Edge, ...]]]:
        """Yield, per global chunk, one (possibly empty) sub-chunk per shard.

        Sub-chunks preserve global arrival order within each shard, so
        concatenating a shard's sub-chunks reproduces the shard's
        sequence from :meth:`ShardRouter.route_edges` exactly.
        """
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        frozen = edges if isinstance(edges, FrozenEdges) else FrozenEdges(edges)
        set_col, elem_col = frozen.columns()
        edge_tuple = frozen.edges
        total = len(frozen)
        workers = self.workers
        for start in range(0, total, chunk_size):
            stop = min(start + chunk_size, total)
            assigned = self.assign(set_col[start:stop], elem_col[start:stop])
            per_shard: List[Tuple[Edge, ...]] = []
            for worker in range(workers):
                positions = np.nonzero(assigned == worker)[0]
                if positions.size:
                    per_shard.append(
                        tuple(edge_tuple[start + int(p)] for p in positions)
                    )
                else:
                    per_shard.append(())
            yield per_shard

    def iter_column_chunks(
        self, edges: Sequence[Edge], chunk_size: int
    ) -> Iterator[List["ColumnChunk"]]:
        """Column twin of :meth:`iter_chunks`: per-shard column batches.

        Yields the same per-shard partition in the same order, but each
        sub-chunk is a :class:`~repro.distributed.ingest.ColumnChunk`
        sliced out of the shared columns with one fancy-index per shard
        — no per-edge tuple is ever built on the routing side.  Feeding
        these through
        :meth:`~repro.distributed.worker.ShardAccumulator.feed_columns`
        accumulates state identical to the tuple path (tested).
        """
        from repro.distributed.ingest import ColumnChunk

        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        frozen = edges if isinstance(edges, FrozenEdges) else FrozenEdges(edges)
        set_col, elem_col = frozen.columns()
        total = len(frozen)
        workers = self.workers
        empty = np.empty(0, dtype=np.int64)
        for start in range(0, total, chunk_size):
            stop = min(start + chunk_size, total)
            set_chunk = set_col[start:stop]
            elem_chunk = elem_col[start:stop]
            assigned = self.assign(set_chunk, elem_chunk)
            per_shard: List[ColumnChunk] = []
            for worker in range(workers):
                positions = np.nonzero(assigned == worker)[0]
                if positions.size:
                    per_shard.append(
                        ColumnChunk(
                            set_chunk[positions], elem_chunk[positions]
                        )
                    )
                else:
                    per_shard.append(ColumnChunk(empty, empty))
            yield per_shard


def _first_appearance_sets(
    buckets: Sequence[Sequence[Edge]],
) -> Tuple[Tuple[int, ...], ...]:
    """Per-shard set ids in order of first appearance in the shard stream."""
    orders: List[Tuple[int, ...]] = []
    for bucket in buckets:
        seen = {}
        for edge in bucket:
            if edge[0] not in seen:
                seen[edge[0]] = None  # dict preserves insertion order
        orders.append(tuple(seen))
    return tuple(orders)
