"""Partitioning an ordered edge stream across simulated workers.

A :class:`ShardRouter` splits one arrival-ordered edge sequence into
``W`` shard-local sequences, preserving the global arrival order inside
every shard.  Three strategies:

``by-set``
    Sets are dealt to workers round-robin over a seeded shuffle — the
    *reference* partition of the deterministic t-party protocol
    (:func:`repro.lowerbound.simple_protocol.split_instance_among_parties`
    delegates to the same deal), so every edge of a set lands on one
    worker and that worker knows the set's membership exactly.  This is
    the partition under which the chain merge reproduces the protocol
    bit-for-bit.
``by-element``
    Elements are dealt the same way; a set's edges scatter, so workers
    hold *partial* membership views (the merge-friendly-sketch regime of
    distributed coverage).
``hash``
    Each edge is routed independently by a seeded splitmix64-style hash
    of ``(set_id, element)`` — the maximally scattered baseline.

Routing is a pure function of ``(edges, strategy, workers, seed)``:
no global RNG, no dependence on thread counts, so the distributed
determinism contract starts here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.stream import EdgeStream
from repro.types import Edge, SeedLike, make_rng

#: Every routing strategy :class:`ShardRouter` understands.
STRATEGIES: Tuple[str, ...] = ("by-set", "by-element", "hash")

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit integer mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def edge_hash_worker(set_id: int, element: int, workers: int, seed: int) -> int:
    """Deterministic worker index for one edge under the hash strategy.

    Python's builtin ``hash`` is salted per process; this mix is not, so
    the partition is reproducible across runs and machines.
    """
    return _splitmix64(_splitmix64(seed ^ (set_id << 1)) ^ element) % workers


def deal_round_robin(
    num_items: int, workers: int, seed: SeedLike = None
) -> Tuple[List[int], List[List[int]]]:
    """Deal ``range(num_items)`` to ``workers`` round-robin (seeded shuffle).

    Returns ``(assignment, per_worker)``: ``assignment[item]`` is the
    worker owning ``item``, and ``per_worker[w]`` lists worker ``w``'s
    items *in deal order* — the order the t-party protocol enumerates a
    party's sets, which the chain merge must reproduce.  Workers beyond
    ``num_items`` simply receive empty shares; they are legal (an empty
    party forwards protocol state untouched).
    """
    if workers < 1:
        raise ConfigurationError(f"need at least 1 worker, got {workers}")
    if num_items < 0:
        raise ConfigurationError(f"num_items must be >= 0, got {num_items}")
    rng = make_rng(seed)
    order = list(range(num_items))
    rng.shuffle(order)
    assignment = [0] * num_items
    per_worker: List[List[int]] = [[] for _ in range(workers)]
    for position, item in enumerate(order):
        worker = position % workers
        assignment[item] = worker
        per_worker[worker].append(item)
    return assignment, per_worker


@dataclass(frozen=True)
class ShardPlan:
    """The output of routing: per-shard edge sequences plus metadata.

    Attributes
    ----------
    strategy, workers, seed:
        The routing configuration that produced the plan.
    shard_edges:
        ``shard_edges[w]`` is worker ``w``'s edge sequence, preserving
        global arrival order.  The shards are a disjoint, exhaustive
        partition of the routed edges.
    set_order:
        ``set_order[w]`` lists the set ids worker ``w`` is responsible
        for, in the order the chain merge enumerates them: the deal
        order for ``by-set`` (including dealt sets that have no edges),
        first-appearance order in the shard stream otherwise.
    order_name:
        Label of the arrival order the routed edges came from.
    """

    strategy: str
    workers: int
    seed: int
    shard_edges: Tuple[Tuple[Edge, ...], ...]
    set_order: Tuple[Tuple[int, ...], ...]
    order_name: str = "canonical"

    @property
    def total_edges(self) -> int:
        """Number of edges across all shards."""
        return sum(len(edges) for edges in self.shard_edges)

    def shard_sizes(self) -> Tuple[int, ...]:
        """Edge count per shard, by worker index."""
        return tuple(len(edges) for edges in self.shard_edges)


class ShardRouter:
    """Routes an ordered edge sequence to ``workers`` simulated shards."""

    def __init__(
        self, strategy: str = "by-set", workers: int = 2, seed: int = 0
    ) -> None:
        if strategy not in STRATEGIES:
            known = ", ".join(STRATEGIES)
            raise ConfigurationError(
                f"unknown shard strategy {strategy!r}; known strategies: {known}"
            )
        if workers < 1:
            raise ConfigurationError(f"need at least 1 worker, got {workers}")
        self.strategy = strategy
        self.workers = workers
        self.seed = seed

    def route_edges(
        self,
        instance: SetCoverInstance,
        edges: Sequence[Edge],
        order_name: str = "canonical",
    ) -> ShardPlan:
        """Partition ``edges`` (an ordering of ``instance``) into shards."""
        workers = self.workers
        buckets: List[List[Edge]] = [[] for _ in range(workers)]
        if self.strategy == "by-set":
            assignment, per_worker = deal_round_robin(
                instance.m, workers, seed=self.seed
            )
            for edge in edges:
                buckets[assignment[edge[0]]].append(edge)
            set_order = tuple(tuple(items) for items in per_worker)
        elif self.strategy == "by-element":
            assignment, _ = deal_round_robin(instance.n, workers, seed=self.seed)
            for edge in edges:
                buckets[assignment[edge[1]]].append(edge)
            set_order = _first_appearance_sets(buckets)
        else:  # hash
            seed = self.seed
            for edge in edges:
                buckets[edge_hash_worker(edge[0], edge[1], workers, seed)].append(
                    edge
                )
            set_order = _first_appearance_sets(buckets)
        return ShardPlan(
            strategy=self.strategy,
            workers=workers,
            seed=self.seed,
            shard_edges=tuple(tuple(bucket) for bucket in buckets),
            set_order=set_order,
            order_name=order_name,
        )

    def route_stream(self, stream: EdgeStream) -> ShardPlan:
        """Partition an *unconsumed* one-pass stream into shards.

        The source stream is marked consumed (its one and only pass is
        spent on the routing read), mirroring the fault injector's
        discipline — the shard streams are the only live views.
        """
        edges = stream.peek_all()
        stream.reader()  # spend the stream's single pass on the routing read
        return self.route_edges(
            stream.instance, edges, order_name=stream.order_name
        )

    def __repr__(self) -> str:
        return (
            f"ShardRouter(strategy={self.strategy!r}, workers={self.workers}, "
            f"seed={self.seed})"
        )


def _first_appearance_sets(
    buckets: Sequence[Sequence[Edge]],
) -> Tuple[Tuple[int, ...], ...]:
    """Per-shard set ids in order of first appearance in the shard stream."""
    orders: List[Tuple[int, ...]] = []
    for bucket in buckets:
        seen = {}
        for edge in bucket:
            if edge[0] not in seen:
                seen[edge[0]] = None  # dict preserves insertion order
        orders.append(tuple(seen))
    return tuple(orders)
