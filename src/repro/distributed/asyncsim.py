"""Deterministic asynchronous delivery simulation for coordinators.

The synchronous executor pretends every shard finishes at once and every
message arrives instantly.  Real clusters do neither: shards straggle,
links lag, and a star coordinator sees uploads in whatever order the
network happens to deliver them.  This module drives the *same* shard
tasks and the *same* coordinators through an adversarial transport —

* :class:`AsyncScheduler` — a pending-message pool on a **logical
  clock**: every posted :class:`Message` becomes available after its
  per-link delay, the :class:`DeliveryPolicy` picks which available
  message lands next, and each delivery advances the clock one step.
  :class:`RandomDelivery` draws the choice from a seeded RNG (so one
  integer reproduces an entire adversarial schedule);
  :class:`FixedDelivery` pins an explicit priority order, letting tests
  enumerate *every* delivery permutation of a small run.
* :func:`run_distributed_async` — the asynchronous twin of
  :func:`~repro.distributed.executor.run_distributed`.  It builds its
  shard tasks through the same
  :func:`~repro.distributed.executor.build_shard_plan_and_tasks` helper
  (identical routing and seed discipline), executes them under the same
  retry/deadline recovery layer, then ships the surviving outputs
  through the scheduler: star coordinators (``union``/``greedy``)
  consume their merge inputs from the coordinator's **inbox** —
  deduplicated by shard index, sorted, so duplicate and reordered
  deliveries cannot change the merge — while the ``chain`` coordinator's
  hand-offs are relayed sequentially (hand-off ``i+1`` is posted only
  after hand-off ``i`` lands), which is what makes its completion time
  grow linearly in ``W`` where the star topologies stay flat.

Parity is structural, not coincidental: the merge runs over the same
outputs, sorted the same way, charging the same
:class:`~repro.distributed.comm.CommMeter` as the synchronous path, so
for any fault-free delivery schedule the cover, certificate, and comm
report are byte-identical to :func:`run_distributed`'s.  The schedule
only shows up in the *diagnostics* — ``logical_steps``,
``delivered_messages``, ``idle_ticks``, ``duplicates_dropped`` — and in
the trace's ``async`` cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.distributed.backends import (
    make_backend,
    run_tasks_with_recovery,
)
from repro.distributed.comm import (
    CommBudget,
    CommMeter,
    link_label,
    words_for_cover_message,
)
from repro.distributed.chain import tournament_rounds
from repro.distributed.coordinator import (
    CoordinatorOptions,
    make_coordinator,
)
from repro.distributed.executor import (
    DistributedResult,
    build_shard_plan_and_tasks,
    resolve_transport,
    validate_transport,
)
from repro.distributed.worker import ShardOutput
from repro.errors import InvalidParameterError, ProtocolError
from repro.faults.injectors import FaultSpec
from repro.faults.resilient import DegradationRecord
from repro.faults.shards import ShardFaultPlan
from repro.obs.events import DEGRADATION, MESSAGE_DELIVERED, SPAN_ASYNC, SPAN_MERGE
from repro.obs.tracer import NULL_TRACER, TraceCollector
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import ArrivalOrder
from repro.types import SeedLike, make_rng


@dataclass(frozen=True)
class Message:
    """One in-flight message of an asynchronous run.

    ``seq`` is the posting order (unique per scheduler); the transport
    may deliver in any order consistent with availability, which is the
    whole point.  ``payload`` is opaque to the scheduler — uploads carry
    the posting shard's index so receivers can deduplicate.
    """

    seq: int
    src: str
    dst: str
    kind: str
    words: int
    payload: object
    posted_step: int
    available_step: int

    @property
    def link(self) -> str:
        """The ``src->dst`` label this message travels on."""
        return link_label(self.src, self.dst)


class DeliveryPolicy:
    """Strategy choosing which available message is delivered next."""

    name = "abstract"

    def choose(self, deliverable: Sequence[Message]) -> int:
        """Index into ``deliverable`` of the message to deliver."""
        raise NotImplementedError


class FifoDelivery(DeliveryPolicy):
    """Deliver in posting order — the synchronous-looking baseline."""

    name = "fifo"

    def choose(self, deliverable: Sequence[Message]) -> int:
        return min(range(len(deliverable)), key=lambda i: deliverable[i].seq)


class RandomDelivery(DeliveryPolicy):
    """Seeded uniformly random choice among the available messages.

    One integer seed reproduces the entire adversarial schedule — the
    chaos harness discipline applied to the transport.
    """

    name = "random"

    def __init__(self, seed: SeedLike = 0) -> None:
        self.seed = seed
        self._rng = make_rng(seed)

    def choose(self, deliverable: Sequence[Message]) -> int:
        return self._rng.randrange(len(deliverable))


class FixedDelivery(DeliveryPolicy):
    """Deliver by an explicit priority over posting sequence numbers.

    ``priority[seq]`` ranks message ``seq``; lower ranks deliver first
    and unranked messages fall back to their ``seq``.  Feeding every
    permutation of ``range(k)`` enumerates every delivery order of a
    ``k``-message run — the exhaustive-parity test harness.
    """

    name = "fixed"

    def __init__(self, priority: Sequence[int]) -> None:
        self._rank: Dict[int, int] = {
            seq: rank for rank, seq in enumerate(priority)
        }

    def choose(self, deliverable: Sequence[Message]) -> int:
        return min(
            range(len(deliverable)),
            key=lambda i: (
                self._rank.get(deliverable[i].seq, len(self._rank)),
                deliverable[i].seq,
            ),
        )


class AsyncScheduler:
    """Pending-message pool with a logical clock and per-player inboxes.

    The clock starts at 0 and advances one step per delivery; when no
    pending message is available yet the clock *idles* forward to the
    earliest availability (counted in ``idle_ticks``).  Per-link delays
    come from ``link_delays`` (keyed by ``src->dst`` label), falling
    back to ``default_delay``; :meth:`post` can pin an absolute
    availability instead for senders that finish late (stragglers).
    """

    def __init__(
        self,
        policy: Optional[DeliveryPolicy] = None,
        link_delays: Optional[Mapping[str, int]] = None,
        default_delay: int = 1,
        tracer=None,
    ) -> None:
        if default_delay < 0:
            raise InvalidParameterError(
                "default_delay", default_delay, "must be >= 0"
            )
        self.policy = policy if policy is not None else FifoDelivery()
        self.link_delays = dict(link_delays or {})
        for label, delay in self.link_delays.items():
            if delay < 0:
                raise InvalidParameterError(
                    "link_delays", f"{label}:{delay}", "delays must be >= 0"
                )
        self.default_delay = default_delay
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clock = 0
        self.delivered = 0
        self.idle_ticks = 0
        self._seq = 0
        self._pending: List[Message] = []
        self._inboxes: Dict[str, List[Message]] = {}

    def link_delay(self, src: str, dst: str) -> int:
        """The configured delay of the ``src->dst`` link."""
        return self.link_delays.get(link_label(src, dst), self.default_delay)

    def post(
        self,
        src: str,
        dst: str,
        kind: str,
        words: int = 0,
        payload: object = None,
        available_step: Optional[int] = None,
    ) -> Message:
        """Add a message to the pending pool.

        Without ``available_step`` the message becomes available after
        its link delay from *now*; an explicit ``available_step`` models
        a sender that only finishes at a known logical step.
        """
        available = (
            available_step
            if available_step is not None
            else self.clock + self.link_delay(src, dst)
        )
        message = Message(
            seq=self._seq,
            src=src,
            dst=dst,
            kind=kind,
            words=words,
            payload=payload,
            posted_step=self.clock,
            available_step=max(available, self.clock),
        )
        self._seq += 1
        self._pending.append(message)
        return message

    def pending(self) -> int:
        """Number of messages still in flight."""
        return len(self._pending)

    def inbox(self, player: str) -> List[Message]:
        """Messages delivered to ``player``, in delivery order."""
        return list(self._inboxes.get(player, ()))

    def deliver_next(self) -> Optional[Message]:
        """Deliver one message chosen by the policy; ``None`` when idle.

        Advances the clock: first idling to the earliest availability if
        nothing is deliverable yet, then one step for the delivery
        itself — so a run's final clock reading is its completion time
        in logical steps.
        """
        if not self._pending:
            return None
        deliverable = [
            m for m in self._pending if m.available_step <= self.clock
        ]
        if not deliverable:
            horizon = min(m.available_step for m in self._pending)
            self.idle_ticks += horizon - self.clock
            self.clock = horizon
            deliverable = [
                m for m in self._pending if m.available_step <= self.clock
            ]
        choice = self.policy.choose(deliverable)
        if not 0 <= choice < len(deliverable):
            raise ProtocolError(
                f"delivery policy {self.policy.name!r} chose index {choice} "
                f"out of {len(deliverable)} deliverable message(s)"
            )
        message = deliverable[choice]
        self._pending.remove(message)
        self.clock += 1
        self.delivered += 1
        self._inboxes.setdefault(message.dst, []).append(message)
        if self.tracer.enabled:
            self.tracer.event(
                MESSAGE_DELIVERED,
                link=message.link,
                kind=message.kind,
                words=message.words,
                seq=message.seq,
                step=self.clock,
            )
        return message

    def deliver_available(self) -> List[Message]:
        """Deliver every currently-available message in ONE logical step.

        The batch twin of :meth:`deliver_next`, modelling parallel
        links: the clock charges *latency*, not bandwidth, so
        independent messages whose availability has arrived all land
        together on a single tick (idling to the earliest availability
        first when none has).  The policy still orders the batch, so
        per-inbox delivery order stays deterministic under seeded
        delivery.  This is what lets a tournament merge's same-round
        hand-offs cost one step instead of one step each — the whole
        point of the tree topology.  Returns the delivered batch,
        empty when nothing is pending.
        """
        if not self._pending:
            return []
        deliverable = [
            m for m in self._pending if m.available_step <= self.clock
        ]
        if not deliverable:
            horizon = min(m.available_step for m in self._pending)
            self.idle_ticks += horizon - self.clock
            self.clock = horizon
            deliverable = [
                m for m in self._pending if m.available_step <= self.clock
            ]
        self.clock += 1
        batch: List[Message] = []
        while deliverable:
            choice = self.policy.choose(deliverable)
            if not 0 <= choice < len(deliverable):
                raise ProtocolError(
                    f"delivery policy {self.policy.name!r} chose index "
                    f"{choice} out of {len(deliverable)} deliverable "
                    "message(s)"
                )
            message = deliverable.pop(choice)
            self._pending.remove(message)
            self.delivered += 1
            self._inboxes.setdefault(message.dst, []).append(message)
            if self.tracer.enabled:
                self.tracer.event(
                    MESSAGE_DELIVERED,
                    link=message.link,
                    kind=message.kind,
                    words=message.words,
                    seq=message.seq,
                    step=self.clock,
                )
            batch.append(message)
        return batch

    def drain(self) -> List[Message]:
        """Deliver every pending message; returns them in delivery order."""
        out: List[Message] = []
        while True:
            message = self.deliver_next()
            if message is None:
                return out
            out.append(message)


def run_distributed_async(
    instance: SetCoverInstance,
    workers: int,
    algorithm: str = "kk",
    strategy: str = "by-set",
    coordinator: str = "chain",
    order: Optional[ArrivalOrder] = None,
    seed: SeedLike = 0,
    alpha: Optional[float] = None,
    max_workers: int = 1,
    comm_budget: Optional[CommBudget] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    collector: Optional[TraceCollector] = None,
    threshold: Optional[float] = None,
    adaptive_threshold: bool = False,
    comm_log: bool = False,
    backend: Optional[str] = None,
    transport: Optional[object] = None,
    shard_faults: Optional[ShardFaultPlan] = None,
    min_shards: Optional[int] = None,
    deadline_steps: Optional[int] = None,
    max_attempts: int = 3,
    backoff_steps: int = 1,
    schedule_seed: SeedLike = 0,
    delivery: Optional[DeliveryPolicy] = None,
    link_delays: Optional[Mapping[str, int]] = None,
    default_delay: int = 1,
) -> DistributedResult:
    """Asynchronous twin of :func:`~repro.distributed.executor.run_distributed`.

    Same semantic parameters, same result type, plus the delivery
    schedule: ``delivery`` (default :class:`RandomDelivery` seeded with
    ``schedule_seed``), ``link_delays`` / ``default_delay`` in logical
    steps, and the shard resilience knobs shared with the synchronous
    path.  ``transport`` selects the wire transport for merge messages
    exactly as in :func:`~repro.distributed.executor.run_distributed`.  The returned result's cover, certificate, and comm report
    are byte-identical to the synchronous materializing path for *any*
    fault-free schedule; the schedule surfaces in ``diagnostics``
    (``logical_steps``, ``delivered_messages``, ``idle_ticks``,
    ``duplicates_dropped``, ``schedule_seed``) and the ``async`` trace
    cell.  Topology sets the critical path: the chain relays hand-offs
    sequentially (Θ(W) logical steps), the ``tree`` coordinator's
    same-round hand-offs are delivered as one batch per round
    (Θ(log W) steps), and the star coordinators post everything at
    once.
    """
    if max_workers < 1:
        raise InvalidParameterError(
            "max_workers", max_workers, "need at least 1 executor worker"
        )
    if min_shards is not None and not 1 <= min_shards <= workers:
        raise InvalidParameterError(
            "min_shards",
            min_shards,
            f"must be between 1 and workers={workers}",
        )
    backend_impl = make_backend(backend if backend is not None else "thread")
    # Fail fast on an unknown coordinator or transport name — before any
    # shard work runs (the transport itself is built at merge time).
    merger = make_coordinator(
        coordinator,
        CoordinatorOptions(
            threshold=threshold, adaptive_threshold=adaptive_threshold
        ),
    )
    validate_transport(transport)
    policy = (
        delivery if delivery is not None else RandomDelivery(schedule_seed)
    )
    plan_faults = shard_faults if shard_faults is not None else ShardFaultPlan()

    traced = collector is not None
    plan, tasks = build_shard_plan_and_tasks(
        instance,
        workers,
        algorithm=algorithm,
        strategy=strategy,
        order=order,
        seed=seed,
        alpha=alpha,
        faults=faults,
        traced=traced,
    )
    async_tracer = (
        collector.tracer_for("async") if collector is not None else NULL_TRACER
    )
    merge_tracer = (
        collector.tracer_for("merge") if collector is not None else NULL_TRACER
    )

    envelopes, outcomes = run_tasks_with_recovery(
        backend_impl,
        tasks,
        max_workers,
        shard_faults=plan_faults,
        max_attempts=max_attempts,
        backoff_steps=backoff_steps,
        deadline_steps=deadline_steps,
        tracer=async_tracer,
    )
    outputs_by_index: Dict[int, ShardOutput] = {}
    for envelope in envelopes:
        if envelope is None:
            continue
        outputs_by_index[envelope.index] = envelope.output
        if collector is not None and envelope.trace_jsonl is not None:
            collector.adopt_jsonl(
                f"shard[{envelope.index:03d}]", envelope.trace_jsonl
            )
    completion = {o.index: o.completion_step for o in outcomes}

    lost = [o for o in outcomes if o.abandoned]
    if lost:
        survivors = workers - len(lost)
        required = min_shards if min_shards is not None else workers
        if survivors < required:
            raise lost[0].to_error(
                deadline_steps=deadline_steps,
                context=(
                    f"quorum not met: {survivors}/{workers} shard(s) "
                    f"survived, need {required}"
                ),
            )
    allow_partial = bool(lost)

    scheduler = AsyncScheduler(
        policy=policy,
        link_delays=link_delays,
        default_delay=default_delay,
        tracer=async_tracer,
    )
    duplicates_dropped = 0
    comm = CommMeter(budget=comm_budget, log_messages=comm_log)
    transport_impl = resolve_transport(transport)

    def do_merge(merge_inputs: List[ShardOutput]):
        try:
            with merge_tracer.span(
                SPAN_MERGE,
                coordinator=coordinator,
                strategy=strategy,
                workers=workers,
            ):
                return merger.merge(
                    instance,
                    plan,
                    merge_inputs,
                    comm,
                    tracer=merge_tracer,
                    allow_partial=allow_partial,
                    transport=transport_impl,
                )
        except BaseException:
            # A failed merge must not leak the transport's socket/threads.
            transport_impl.close()
            raise

    with async_tracer.span(
        SPAN_ASYNC,
        coordinator=coordinator,
        policy=policy.name,
        workers=workers,
    ):
        if coordinator == "chain":
            # The chain is inherently sequential: hand-off i+1 can only
            # be posted once hand-off i has landed, and a hand-off
            # leaves shard a no earlier than the shard finished.  The
            # merge itself runs first (it is what computes the state
            # sizes); the scheduler then relays the hand-offs, so the
            # clock measures the protocol's O(W) critical path.
            survivors_sorted = sorted(outputs_by_index)
            merge_inputs = [outputs_by_index[i] for i in survivors_sorted]
            outcome = do_merge(merge_inputs)
            hops = list(zip(survivors_sorted, survivors_sorted[1:]))
            hand_words: Dict[str, int] = dict(
                comm.report().per_link_words
            )
            seen_hops = set()
            for a, b in hops:
                src, dst = f"shard[{a}]", f"shard[{b}]"
                ready = max(
                    scheduler.clock + scheduler.link_delay(src, dst),
                    completion.get(a, 0),
                )
                copies = 2 if plan_faults.spec_for(a).duplicate else 1
                for _ in range(copies):
                    scheduler.post(
                        src,
                        dst,
                        kind="handoff",
                        words=hand_words.get(link_label(src, dst), 0),
                        payload=a,
                        available_step=ready,
                    )
                for message in scheduler.drain():
                    hop = (message.src, message.dst)
                    if hop in seen_hops:
                        duplicates_dropped += 1
                    seen_hops.add(hop)
        elif coordinator == "tree":
            # Tournament topology: hand-offs within a round are
            # independent, so each round is posted as a batch and
            # delivered with :meth:`AsyncScheduler.deliver_available`
            # — the whole round lands on one logical tick (plus its
            # idle-to-availability), which is exactly the Θ(log W)
            # critical path the tree buys over the chain's Θ(W).  The
            # merge runs first (it computes the state sizes); the
            # scheduler replays the tree's edges from the metered
            # per-link words — unambiguous because each (src, dst)
            # tree edge is used exactly once.
            survivors_sorted = sorted(outputs_by_index)
            merge_inputs = [outputs_by_index[i] for i in survivors_sorted]
            outcome = do_merge(merge_inputs)
            hand_words = dict(comm.report().per_link_words)
            ready: Dict[int, int] = {
                i: completion.get(i, 0) for i in survivors_sorted
            }
            seen_edges = set()
            for round_pairs in tournament_rounds(
                range(len(survivors_sorted))
            ):
                expected = 0
                for src_pos, dst_pos in round_pairs:
                    a = survivors_sorted[src_pos]
                    b = survivors_sorted[dst_pos]
                    src, dst = f"shard[{a}]", f"shard[{b}]"
                    # A hand-off leaves its src no earlier than both
                    # endpoints finished their previous round (the dst
                    # must have its own state ready to merge into).
                    avail = max(
                        scheduler.clock + scheduler.link_delay(src, dst),
                        ready[a],
                        ready[b],
                    )
                    copies = 2 if plan_faults.spec_for(a).duplicate else 1
                    expected += copies
                    for _ in range(copies):
                        scheduler.post(
                            src,
                            dst,
                            kind="tree-handoff",
                            words=hand_words.get(link_label(src, dst), 0),
                            payload=a,
                            available_step=avail,
                        )
                delivered_round = 0
                while delivered_round < expected:
                    batch = scheduler.deliver_available()
                    delivered_round += len(batch)
                    for message in batch:
                        edge = (message.src, message.dst)
                        if edge in seen_edges:
                            duplicates_dropped += 1
                        seen_edges.add(edge)
                for src_pos, dst_pos in round_pairs:
                    ready.pop(survivors_sorted[src_pos], None)
                    ready[survivors_sorted[dst_pos]] = scheduler.clock
        else:
            # Star topology: every surviving shard posts its envelope
            # upload, available once the shard finished plus the link
            # delay; the coordinator consumes its inbox — deduplicated
            # by shard index and sorted — as the merge inputs.
            for i in sorted(outputs_by_index):
                out = outputs_by_index[i]
                src = f"shard[{i}]"
                words = words_for_cover_message(
                    len(out.cover), len(out.certificate)
                )
                ready = completion.get(i, 0) + scheduler.link_delay(
                    src, "coordinator"
                )
                copies = 2 if plan_faults.spec_for(i).duplicate else 1
                for _ in range(copies):
                    scheduler.post(
                        src,
                        "coordinator",
                        kind="envelope",
                        words=words,
                        payload=i,
                        available_step=ready,
                    )
            scheduler.drain()
            received: List[int] = []
            seen = set()
            for message in scheduler.inbox("coordinator"):
                index = message.payload
                if index in seen:
                    duplicates_dropped += 1
                    continue
                seen.add(index)
                received.append(index)
            merge_inputs = [outputs_by_index[i] for i in sorted(received)]
            outcome = do_merge(merge_inputs)

    comm_report = comm.report()
    transport_report = transport_impl.report(
        metered_words=comm_report.total_words
    )
    transport_impl.close()

    degradations: Tuple[DegradationRecord, ...] = ()
    if lost:
        n = instance.n
        fraction = (n - len(outcome.uncovered)) / n if n else 1.0
        records = []
        for o in lost:
            records.append(
                DegradationRecord(
                    policy="quorum-degraded",
                    relaxed_invariant="complete-cover",
                    coverage_fraction=fraction,
                    uncovered_count=len(outcome.uncovered),
                    error_type=o.error_type,
                    error_message=o.error_message,
                    details={
                        "shard": float(o.index),
                        "attempts": float(o.attempts),
                        "completion_step": float(o.completion_step),
                        "survivors": float(workers - len(lost)),
                        "workers": float(workers),
                    },
                )
            )
            if merge_tracer.enabled:
                merge_tracer.event(
                    DEGRADATION,
                    policy="quorum-degraded",
                    shard=o.index,
                    error_type=o.error_type,
                    uncovered_count=len(outcome.uncovered),
                )
        degradations = tuple(records)

    shard_outputs = [outputs_by_index[i] for i in sorted(outputs_by_index)]
    diagnostics: Dict[str, float] = dict(outcome.diagnostics)
    diagnostics["total_edges_routed"] = float(plan.total_edges)
    diagnostics["dropped_invalid_edges"] = float(
        sum(out.report.dropped_invalid for out in shard_outputs)
    )
    diagnostics["peak_shard_space_words"] = float(
        max((out.report.space.peak_words for out in shard_outputs), default=0)
    )
    diagnostics["shards_lost"] = float(len(lost))
    diagnostics["shard_retries"] = float(
        sum(max(0, o.attempts - 1) for o in outcomes)
    )
    diagnostics["logical_steps"] = float(scheduler.clock)
    diagnostics["delivered_messages"] = float(scheduler.delivered)
    diagnostics["idle_ticks"] = float(scheduler.idle_ticks)
    diagnostics["duplicates_dropped"] = float(duplicates_dropped)
    diagnostics["schedule_seed"] = float(int(schedule_seed))

    arrival_name = plan.order_name
    return DistributedResult(
        cover=frozenset(outcome.cover),
        certificate=dict(outcome.certificate),
        comm=comm_report,
        shards=[out.report for out in shard_outputs],
        algorithm=algorithm,
        strategy=strategy,
        coordinator=coordinator,
        workers=workers,
        seed=int(seed if seed is not None else 0),
        order_name=arrival_name,
        diagnostics=diagnostics,
        outcomes=tuple(outcomes),
        degradations=degradations,
        uncovered=tuple(outcome.uncovered),
        transport=transport_report,
    )
