"""Bounded-queue streaming ingest: routing overlaps shard ingestion.

The materialized path routes *every* edge into per-shard lists before
any shard starts working.  For out-of-core streams that is exactly the
wrong shape: the router holds W full shards in memory and the shards
sit idle until routing finishes.  This module replaces the hand-off
with bounded per-shard chunk queues:

* the router thread pushes chunked column batches (sliced from the
  shared :class:`~repro.streaming.stream.FrozenEdges` buffer) into each
  shard's :class:`BoundedShardQueue`;
* each shard drains its queue into a
  :class:`~repro.distributed.worker.ShardAccumulator` — validating
  edges, building membership, discovering local ids — while routing is
  still in flight;
* a full queue blocks the router (backpressure), so the in-flight
  hand-off buffer never holds more than ``queue_depth`` chunks per
  shard.  :class:`IngestReport` records the observed peaks; the tests
  assert the bound.

The one-pass discipline holds per shard: every chunk is delivered once,
in global arrival order, and consumed once.  Whether ingest runs on
dedicated drain threads (thread backend) or inline between puts (serial
backend) is operational — the accumulated shard state is identical, so
the distributed determinism contract extends to ``ingest="stream"``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.types import Edge


class ColumnChunk:
    """A routed sub-chunk carried as ``int64`` edge columns.

    The zero-tuple form of a chunk: two column slices instead of a
    tuple of :class:`~repro.types.Edge` records, produced by
    :meth:`~repro.distributed.router.ChunkAssigner.iter_column_chunks`
    and consumed by
    :meth:`~repro.distributed.worker.ShardAccumulator.feed_columns`.
    Supports ``len``/truthiness so the queueing layer treats both chunk
    forms identically.
    """

    __slots__ = ("set_ids", "elements")

    def __init__(self, set_ids: np.ndarray, elements: np.ndarray) -> None:
        self.set_ids = set_ids
        self.elements = elements

    def __len__(self) -> int:
        return len(self.set_ids)

    def __bool__(self) -> bool:
        return len(self.set_ids) > 0

    def edges(self) -> Tuple[Edge, ...]:
        """Materialize the chunk as edge records (tests/debugging)."""
        return tuple(
            Edge(s, u)
            for s, u in zip(self.set_ids.tolist(), self.elements.tolist())
        )


#: A chunk as it crosses the router → shard boundary: either a tuple of
#: edges (the buffering/fault path) or a :class:`ColumnChunk`.
Chunk = Union[Tuple[Edge, ...], ColumnChunk]


class BoundedShardQueue:
    """A closable FIFO of edge chunks holding at most ``depth`` chunks.

    ``put`` blocks while the queue is full — that blocking *is* the
    backpressure that bounds the streaming path's materialization.
    ``peak_depth`` records the high-water chunk count ever held, so
    tests can assert the bound was honoured (and genuinely reached).
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._chunks: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.peak_depth = 0
        self.chunks_in = 0

    def put(self, chunk: Chunk) -> None:
        """Enqueue one chunk, blocking while the queue is full."""
        with self._cond:
            if self._closed:
                raise ValueError("cannot put into a closed shard queue")
            while len(self._chunks) >= self.depth:
                self._cond.wait()
            self._chunks.append(chunk)
            self.chunks_in += 1
            if len(self._chunks) > self.peak_depth:
                self.peak_depth = len(self._chunks)
            self._cond.notify_all()

    def close(self) -> None:
        """Mark the stream complete; pending chunks stay consumable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def get(self) -> Optional[Chunk]:
        """Dequeue the next chunk; ``None`` once closed and drained."""
        with self._cond:
            while not self._chunks and not self._closed:
                self._cond.wait()
            if self._chunks:
                chunk = self._chunks.popleft()
                self._cond.notify_all()
                return chunk
            return None

    def __len__(self) -> int:
        with self._cond:
            return len(self._chunks)


@dataclass(frozen=True)
class IngestReport:
    """What one streaming ingest actually did — diagnostics only.

    Operational, not semantic: peak queue depths depend on thread
    timing, so this report is deliberately excluded from
    :class:`~repro.distributed.executor.DistributedResult` equality.
    """

    chunk_size: int
    queue_depth: int
    threaded: bool
    chunks_routed: int
    edges_routed: int
    peak_queue_depths: Tuple[int, ...]

    @property
    def max_peak_depth(self) -> int:
        """The deepest any shard's hand-off queue ever got."""
        return max(self.peak_queue_depths, default=0)


def stream_ingest(
    routed_chunks: Iterable[Sequence[Chunk]],
    consumers: Sequence[Callable[[Chunk], None]],
    chunk_size: int,
    queue_depth: int,
    threaded: bool,
) -> IngestReport:
    """Drive routed chunks into per-shard consumers through bounded queues.

    ``routed_chunks`` yields, per global chunk, one (possibly empty)
    sub-chunk per shard, in shard-index order — the router's streaming
    output.  ``consumers[i]`` ingests shard ``i``'s sub-chunks in
    arrival order (typically ``ShardAccumulator.feed``).

    With ``threaded=True`` each shard gets a dedicated drain thread, so
    shard ingest overlaps routing and a full queue stalls only the
    router.  With ``threaded=False`` chunks are consumed inline right
    after the put — same delivery order, same accumulated state, queue
    peaks pinned at 1.
    """
    workers = len(consumers)
    queues = [BoundedShardQueue(queue_depth) for _ in range(workers)]
    chunks_routed = 0
    edges_routed = 0

    errors: List[Optional[BaseException]] = [None] * workers

    def drain(index: int) -> None:
        queue = queues[index]
        consume = consumers[index]
        try:
            while True:
                chunk = queue.get()
                if chunk is None:
                    return
                consume(chunk)
        except BaseException as exc:  # noqa: BLE001 - re-raised after join
            errors[index] = exc
            # Keep draining so a full queue cannot deadlock the router.
            while queue.get() is not None:
                pass

    threads: List[threading.Thread] = []
    if threaded:
        threads = [
            threading.Thread(
                target=drain, args=(i,), name=f"shard-ingest-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
    try:
        for per_shard in routed_chunks:
            for index, chunk in enumerate(per_shard):
                if not chunk:
                    continue
                chunks_routed += 1
                edges_routed += len(chunk)
                queues[index].put(chunk)
                if not threaded:
                    drain_one = queues[index].get()
                    assert drain_one is chunk
                    consumers[index](drain_one)
    finally:
        for queue in queues:
            queue.close()
        for thread in threads:
            thread.join()
    for exc in errors:
        if exc is not None:
            raise exc
    return IngestReport(
        chunk_size=chunk_size,
        queue_depth=queue_depth,
        threaded=threaded,
        chunks_routed=chunks_routed,
        edges_routed=edges_routed,
        peak_queue_depths=tuple(queue.peak_depth for queue in queues),
    )
