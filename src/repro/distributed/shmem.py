"""Zero-copy shard shipping over POSIX shared memory.

The process backend used to pickle every shard's full edge tuple into
its :class:`~repro.distributed.backends.ShardTask` — O(stream) bytes
serialized per worker, re-materialized edge by edge in every child.
This module replaces that payload with a *descriptor*: the parent
copies all shards' edge columns once into a single
:mod:`multiprocessing.shared_memory` segment and each task carries only
a :class:`ShardSpan` — segment name, offset, length — so the pickled
task stays O(1) in the stream size and the child reads its shard as two
``int64`` numpy views over the same physical pages.

Segment layout (one segment per :meth:`EdgeSegment.create` call)::

    int64[total]  set_ids,  all shards concatenated in shard order
    int64[total]  elements, same order

Shard ``i`` owns rows ``[offset_i, offset_i + length_i)`` of both
columns.  Segment names are ``repro-<pid-hex>-<random-hex>``: unique
per creating process, collision-safe against stale segments from a
crashed predecessor with a recycled pid.

Lifecycle discipline (the leak-safety contract tested by
``tests/test_distributed_shmem.py``):

* the **parent** creates the segment, ships the spans, and unlinks it
  in a ``finally`` as soon as the pool returns — worker crashes
  included;
* a module-level ``atexit`` hook unlinks anything still live if the
  parent itself dies between create and cleanup.  Cleanup is owner-pid
  guarded so a forked pool child inheriting the registry can never
  unlink its parent's segments;
* the **child** attaches read-only views with
  :mod:`multiprocessing.resource_tracker` registration suppressed
  (CPython < 3.13 registers on attach as well as create, and pool
  children share the parent's tracker process — an attach-side
  registration would make the tracker double-unlink the parent's
  segment and corrupt its cache), and closes its mapping in a
  ``finally``.

When :mod:`multiprocessing.shared_memory` is unavailable, or segment
creation fails at runtime (no ``/dev/shm``, exhausted quota), shipping
falls back to the classic pickled-edges path: :func:`ship_tasks`
returns the tasks unchanged and the backend reports ``mode="pickle"``.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import guard exercised only on exotic builds
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _resource_tracker = None
    _shared_memory = None

_WORD_BYTES = 8


def shared_memory_available() -> bool:
    """Whether this interpreter can create shared-memory segments."""
    return _shared_memory is not None


@dataclass(frozen=True)
class ShardSpan:
    """Descriptor of one shard's rows inside an edge segment.

    This is the whole cross-process payload for a shard's edges: a
    segment name plus three integers, O(1) in the stream size.
    """

    segment: str
    offset: int
    length: int
    total: int


@dataclass(frozen=True)
class ShippingReport:
    """What one process-backend dispatch physically shipped.

    Operational metadata (like
    :class:`~repro.distributed.ingest.IngestReport`): recorded on the
    result for perfbench and tests, excluded from result equality —
    the shipping mode must not change what is computed.
    """

    mode: str  #: ``"shared-memory"`` or ``"pickle"``
    tasks: int
    stream_edges: int
    task_bytes: Tuple[int, ...]
    segment_bytes: int = 0

    @property
    def total_task_bytes(self) -> int:
        """Pickled bytes across every shipped task."""
        return sum(self.task_bytes)

    @property
    def max_task_bytes(self) -> int:
        """Largest single pickled task payload."""
        return max(self.task_bytes, default=0)


#: Segments created by this process and not yet cleaned up.
_LIVE_SEGMENTS: Dict[str, "EdgeSegment"] = {}
_ATEXIT_REGISTERED = False


def _cleanup_live_segments() -> None:
    """Unlink every still-live segment this process created (atexit).

    Best-effort sweep: one segment's failure (say, a mapping pinned by
    a pool initializer that raised before any task ran) must not leave
    the remaining live segments leaked — each cleanup is isolated.  The
    live set is snapshotted up front (``cleanup()`` mutates it as it
    runs), and a failed segment's handle is dropped *by identity*, not
    by name — popping by name could evict a newer, still-live segment
    that reused the label.
    """
    for segment in list(_LIVE_SEGMENTS.values()):
        try:
            segment.cleanup()
        except Exception:
            # Drop the handle so a repeated sweep cannot re-raise over
            # the same segment; the OS reclaims it at process exit.
            stale = [
                name
                for name, live in _LIVE_SEGMENTS.items()
                if live is segment
            ]
            for name in stale:
                _LIVE_SEGMENTS.pop(name, None)


def _track_segment(segment: "EdgeSegment") -> None:
    global _ATEXIT_REGISTERED
    _LIVE_SEGMENTS[segment.name] = segment
    if not _ATEXIT_REGISTERED:
        atexit.register(_cleanup_live_segments)
        _ATEXIT_REGISTERED = True


def _attach_untracked(name: str):
    """Attach to an existing segment without tracker registration.

    The attaching process does not own the segment, so it must not be
    registered for cleanup — the creating parent (which shares the same
    tracker process under a forking pool) already is.  Python 3.13 has
    ``track=False`` for exactly this; earlier versions register
    unconditionally on attach, so registration is suppressed for the
    duration of the constructor instead.  Pool children execute tasks
    one at a time, so the temporary patch cannot race.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    if _resource_tracker is None:  # pragma: no cover
        return _shared_memory.SharedMemory(name=name)
    original = _resource_tracker.register
    _resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        _resource_tracker.register = original


class EdgeSegment:
    """Parent-side owner handle for one shared edge-column segment."""

    def __init__(
        self,
        shm,
        buffer: Optional[np.ndarray],
        spans: Tuple[ShardSpan, ...],
        owner_pid: int,
    ) -> None:
        self._shm = shm
        self._buffer = buffer
        self.spans = spans
        self._owner_pid = owner_pid
        self._closed = False

    @property
    def name(self) -> str:
        """The segment's attachable name."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the underlying segment in bytes."""
        return self._shm.size

    @classmethod
    def create(
        cls, shard_columns: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> "EdgeSegment":
        """Copy per-shard ``(set_ids, elements)`` columns into one segment.

        One O(total edges) copy on the parent side; every child then
        reads its shard zero-copy.  Raises :class:`OSError` (including
        the shared-memory module's failures) when the platform refuses;
        callers fall back to pickled shipping.
        """
        if _shared_memory is None:
            raise OSError("multiprocessing.shared_memory is unavailable")
        total = sum(len(set_ids) for set_ids, _ in shard_columns)
        name = f"repro-{os.getpid():x}-{secrets.token_hex(4)}"
        shm = _shared_memory.SharedMemory(
            create=True, size=max(_WORD_BYTES, 2 * total * _WORD_BYTES), name=name
        )
        try:
            buffer = np.ndarray((2, total), dtype=np.int64, buffer=shm.buf)
            offset = 0
            spans: List[ShardSpan] = []
            for set_ids, elements in shard_columns:
                k = len(set_ids)
                if k:
                    buffer[0, offset : offset + k] = set_ids
                    buffer[1, offset : offset + k] = elements
                spans.append(
                    ShardSpan(
                        segment=shm.name, offset=offset, length=k, total=total
                    )
                )
                offset += k
        except BaseException:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise
        segment = cls(
            shm=shm, buffer=buffer, spans=tuple(spans), owner_pid=os.getpid()
        )
        _track_segment(segment)
        return segment

    def cleanup(self) -> None:
        """Close and unlink the segment; idempotent, owner-pid guarded.

        A forked child inheriting this handle (pool workers under the
        ``fork`` start method run the parent's atexit hooks) must never
        unlink the parent's live segment — hence the pid guard.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        _LIVE_SEGMENTS.pop(self.name, None)
        self._buffer = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray view; freed at exit
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


_EMPTY_COLUMN = np.empty(0, dtype=np.int64)


class SpanView:
    """Child-side attachment resolving a :class:`ShardSpan` to columns.

    ``set_ids`` / ``elements`` are zero-copy views over the shared
    pages (empty arrays for a zero-length span — nothing is attached).
    Callers must drop any derived views before :meth:`close`.
    """

    def __init__(self, span: ShardSpan) -> None:
        self._shm = None
        self.set_ids: np.ndarray = _EMPTY_COLUMN
        self.elements: np.ndarray = _EMPTY_COLUMN
        if span.length == 0 or _shared_memory is None:
            return
        shm = _attach_untracked(span.segment)
        self._shm = shm
        columns = np.ndarray((2, span.total), dtype=np.int64, buffer=shm.buf)
        stop = span.offset + span.length
        self.set_ids = columns[0, span.offset : stop]
        self.elements = columns[1, span.offset : stop]

    def close(self) -> None:
        """Drop the views and close this process's mapping (idempotent)."""
        if self._shm is None:
            return
        self.set_ids = _EMPTY_COLUMN
        self.elements = _EMPTY_COLUMN
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray view; freed at exit
            pass


def ship_tasks(tasks: Sequence) -> Tuple[List, Optional[EdgeSegment]]:
    """Convert tasks' edge payloads into spans over one fresh segment.

    Returns ``(shipped_tasks, segment)``.  Shipped tasks carry empty
    ``edges`` and a :class:`ShardSpan`; the caller owns the returned
    segment and must :meth:`EdgeSegment.cleanup` it once the pool is
    done.  On any shared-memory failure the original tasks come back
    with ``segment=None`` — the pickled-edges fallback.
    """
    columns: List[Tuple[np.ndarray, np.ndarray]] = []
    for task in tasks:
        k = len(task.edges)
        if k:
            pairs = np.asarray(task.edges, dtype=np.int64).reshape(k, 2)
            columns.append(
                (
                    np.ascontiguousarray(pairs[:, 0]),
                    np.ascontiguousarray(pairs[:, 1]),
                )
            )
        else:
            columns.append((_EMPTY_COLUMN, _EMPTY_COLUMN))
    try:
        segment = EdgeSegment.create(columns)
    except OSError:
        return list(tasks), None
    try:
        shipped = [
            replace(task, edges=(), span=segment.spans[index])
            for index, task in enumerate(tasks)
        ]
    except BaseException:
        # The segment was created but no task will ever reference it —
        # without this, it would leak until the atexit sweep.
        segment.cleanup()
        raise
    return shipped, segment


def measure_shipping(
    tasks: Sequence, mode: str, segment: Optional[EdgeSegment] = None
) -> ShippingReport:
    """Measure what a dispatch of ``tasks`` physically serializes.

    ``task_bytes`` is the pickled size of each task exactly as the
    process pool would ship it — O(descriptor) under shared memory,
    O(shard) under the pickle fallback.
    """
    task_bytes = tuple(
        len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
        for task in tasks
    )
    if segment is not None:
        stream_edges = sum(
            task.span.length for task in tasks if task.span is not None
        )
    else:
        stream_edges = sum(len(task.edges) for task in tasks)
    return ShippingReport(
        mode=mode,
        tasks=len(tasks),
        stream_edges=stream_edges,
        task_bytes=task_bytes,
        segment_bytes=segment.nbytes if segment is not None else 0,
    )
