"""The distributed executor: route → run shards → merge, deterministically.

:func:`run_distributed` is the subsystem's front door.  It routes the
instance's ordered edge stream across ``W`` simulated workers, runs each
worker (serially or on a thread pool), and merges the outputs through a
registered coordinator with full communication accounting.

Determinism contract (tested by ``tests/test_distributed_determinism.py``):
the :class:`DistributedResult` is a pure function of
``(instance, order, seed, workers, algorithm, strategy, coordinator,
faults)`` and is bit-identical for every ``max_workers`` setting.  The
machinery is the :class:`~repro.analysis.runner.ExperimentRunner`
pattern: all per-shard seeds are pre-drawn serially from one root RNG
before any worker starts, results are slotted by shard index (never by
completion order), and traces go through a
:class:`~repro.obs.tracer.TraceCollector` whose output is sorted by
label.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.distributed.comm import CommBudget, CommMeter, CommReport
from repro.distributed.coordinator import make_coordinator
from repro.distributed.router import ShardRouter
from repro.distributed.worker import ShardOutput, ShardReport, Worker
from repro.errors import ConfigurationError, InvalidCoverError
from repro.faults.injectors import FaultSpec, apply_faults
from repro.obs.events import SPAN_MERGE
from repro.obs.tracer import NULL_TRACER, TraceCollector
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import ArrivalOrder, CanonicalOrder
from repro.types import ElementId, SeedLike, SetId, make_rng

_SEED_SPACE = 2**63


@dataclass
class DistributedResult:
    """Outcome of one distributed run: cover, shard reports, comm report."""

    cover: FrozenSet[SetId]
    certificate: Dict[ElementId, SetId]
    comm: CommReport
    shards: List[ShardReport]
    algorithm: str = ""
    strategy: str = ""
    coordinator: str = ""
    workers: int = 0
    seed: int = 0
    order_name: str = "canonical"
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def cover_size(self) -> int:
        """Number of sets in the merged cover."""
        return len(self.cover)

    @property
    def total_comm_words(self) -> int:
        """Total words moved between shards and coordinator."""
        return self.comm.total_words

    @property
    def max_message_words(self) -> int:
        """Largest single message of the merge — Theorem 2's quantity."""
        return self.comm.max_message_words

    def verify(self, instance: SetCoverInstance) -> None:
        """Raise :class:`InvalidCoverError` unless this is a valid cover.

        Same three checks as :meth:`StreamingResult.verify`: total
        certificate, witnesses inside the cover, witnesses containing
        their elements.
        """
        label = f"distributed[{self.coordinator or 'merge'}]"
        for u in range(instance.n):
            if u not in self.certificate:
                raise InvalidCoverError(f"{label}: element {u} has no witness")
            witness = self.certificate[u]
            if witness not in self.cover:
                raise InvalidCoverError(
                    f"{label}: witness {witness} for element {u} is not in "
                    "the reported cover"
                )
            if not instance.contains(witness, u):
                raise InvalidCoverError(
                    f"{label}: set {witness} does not contain element {u}"
                )

    def is_valid(self, instance: SetCoverInstance) -> bool:
        """``True`` iff :meth:`verify` passes."""
        try:
            self.verify(instance)
        except InvalidCoverError:
            return False
        return True


def run_distributed(
    instance: SetCoverInstance,
    workers: int,
    algorithm: str = "kk",
    strategy: str = "by-set",
    coordinator: str = "chain",
    order: Optional[ArrivalOrder] = None,
    seed: SeedLike = 0,
    alpha: Optional[float] = None,
    max_workers: int = 1,
    comm_budget: Optional[CommBudget] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    collector: Optional[TraceCollector] = None,
    threshold: Optional[float] = None,
    comm_log: bool = False,
) -> DistributedResult:
    """Run ``algorithm`` over ``instance`` sharded across ``workers``.

    Parameters
    ----------
    workers:
        Number of simulated shards ``W`` (≥ 1).  This is a *semantic*
        parameter — it changes the partition and hence the result.
    max_workers:
        Real thread count executing the shards (≥ 1).  This is an
        *operational* parameter — it must not, and does not, change the
        result.
    order:
        Arrival order applied to the canonical edge enumeration before
        routing; defaults to :class:`CanonicalOrder`.
    comm_budget:
        Optional hard cap on total merge communication; crossing it
        raises :class:`~repro.errors.CommBudgetError`.
    faults:
        Fault specs applied *per shard* to each shard's edge sequence
        (each shard re-seeds the specs from its own pre-drawn fault
        seed, so shards fail independently as real machines would).
    collector:
        Attach to record per-shard (``shard[i]``) and merge traces.
    threshold:
        Chain coordinator's greedy take-threshold override.
    comm_log:
        Keep the full per-message log in the comm report (tests only).
    """
    if workers < 1:
        raise ConfigurationError(f"need at least 1 worker, got {workers}")
    if max_workers < 1:
        raise ConfigurationError(
            f"need at least 1 executor thread, got {max_workers}"
        )
    arrival = order if order is not None else CanonicalOrder()
    root_seed = seed if seed is not None else 0
    edges = arrival.apply(list(instance.edges()))

    router = ShardRouter(strategy=strategy, workers=workers, seed=root_seed)
    plan = router.route_edges(instance, edges, order_name=arrival.name)

    # Pre-draw every per-shard seed serially from one root RNG, fault
    # seeds included even when faults are off — adding a fault spec must
    # not shift the algorithm seeds (the ExperimentRunner discipline).
    rng = make_rng(root_seed)
    shard_seeds = [rng.randrange(_SEED_SPACE) for _ in range(workers)]
    fault_seeds = [rng.randrange(_SEED_SPACE) for _ in range(workers)]

    def run_shard(index: int) -> ShardOutput:
        shard_edges = plan.shard_edges[index]
        injection = None
        if faults:
            reseeded = [
                FaultSpec(
                    kind=spec.kind,
                    rate=spec.rate,
                    seed=(fault_seeds[index] ^ spec.seed) % _SEED_SPACE,
                )
                for spec in faults
            ]
            shard_edges, _, injection = apply_faults(
                shard_edges, instance.n, instance.m, reseeded
            )
        tracer = (
            collector.tracer_for(f"shard[{index:03d}]")
            if collector is not None
            else NULL_TRACER
        )
        worker = Worker(
            index=index,
            algorithm=algorithm,
            seed=shard_seeds[index],
            alpha=alpha,
            tracer=tracer,
        )
        return worker.run(
            instance, shard_edges, plan.set_order[index], injection=injection
        )

    outputs: List[Optional[ShardOutput]] = [None] * workers
    if max_workers == 1 or workers == 1:
        for index in range(workers):
            outputs[index] = run_shard(index)
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(run_shard, i) for i in range(workers)]
            # Slot results by shard index, never by completion order.
            for index, future in enumerate(futures):
                outputs[index] = future.result()
    shard_outputs: List[ShardOutput] = [out for out in outputs if out is not None]
    assert len(shard_outputs) == workers

    merge_tracer = (
        collector.tracer_for("merge") if collector is not None else NULL_TRACER
    )
    comm = CommMeter(budget=comm_budget, log_messages=comm_log)
    merger = make_coordinator(coordinator, threshold=threshold)
    with merge_tracer.span(
        SPAN_MERGE,
        coordinator=coordinator,
        strategy=strategy,
        workers=workers,
    ):
        outcome = merger.merge(
            instance, plan, shard_outputs, comm, tracer=merge_tracer
        )

    diagnostics: Dict[str, float] = dict(outcome.diagnostics)
    diagnostics["total_edges_routed"] = float(plan.total_edges)
    diagnostics["dropped_invalid_edges"] = float(
        sum(out.report.dropped_invalid for out in shard_outputs)
    )
    diagnostics["peak_shard_space_words"] = float(
        max((out.report.space.peak_words for out in shard_outputs), default=0)
    )
    return DistributedResult(
        cover=frozenset(outcome.cover),
        certificate=dict(outcome.certificate),
        comm=comm.report(),
        shards=[out.report for out in shard_outputs],
        algorithm=algorithm,
        strategy=strategy,
        coordinator=coordinator,
        workers=workers,
        seed=int(root_seed),
        order_name=arrival.name,
        diagnostics=diagnostics,
    )


def shard_space_reports(result: DistributedResult) -> Tuple[int, ...]:
    """Per-shard peak space in words, by shard index (convenience)."""
    return tuple(report.space.peak_words for report in result.shards)
