"""The distributed executor: route → run shards → merge, deterministically.

:func:`run_distributed` is the subsystem's front door.  It routes the
instance's ordered edge stream across ``W`` simulated workers, runs each
worker on a pluggable execution backend (``serial``, ``thread``, or
``process`` — see :mod:`repro.distributed.backends`), and merges the
outputs through a registered coordinator with full communication
accounting.  Routing itself is pluggable too: the default path
materializes every shard before execution, while ``ingest="stream"``
feeds shards through bounded per-shard queues so routing and shard
ingest overlap (:mod:`repro.distributed.ingest`).

Determinism contract (tested by ``tests/test_distributed_determinism.py``
and ``tests/test_distributed_backends.py``): the
:class:`DistributedResult` is a pure function of
``(instance, order, seed, workers, algorithm, strategy, coordinator,
faults)`` and is bit-identical for every ``max_workers`` setting, every
backend, and both ingest modes.  The machinery is the
:class:`~repro.analysis.runner.ExperimentRunner` pattern: all per-shard
seeds are pre-drawn serially from one root RNG before any worker
starts, shard work travels as self-contained pickle-clean
:class:`~repro.distributed.backends.ShardTask` records, results are
slotted by shard index (never by completion order), and traces go
through a :class:`~repro.obs.tracer.TraceCollector` whose output is
sorted by label — worker processes return serialized span cells the
parent adopts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.distributed.backends import (
    Backend,
    ShardEnvelope,
    ShardOutcome,
    ShardTask,
    make_backend,
    run_tasks_with_recovery,
)
from repro.distributed.comm import CommBudget, CommMeter, CommReport
from repro.distributed.coordinator import (
    CoordinatorOptions,
    make_coordinator,
)
from repro.distributed.ingest import IngestReport, stream_ingest
from repro.distributed.router import ShardPlan, ShardRouter
from repro.distributed.shmem import ShippingReport
from repro.distributed.transport import (
    Transport,
    TransportReport,
    make_transport,
)
from repro.distributed.worker import (
    InstanceShape,
    ShardAccumulator,
    ShardOutput,
    ShardReport,
)
from repro.errors import (
    ConfigurationError,
    InvalidCoverError,
    InvalidParameterError,
)
from repro.faults.injectors import FaultSpec
from repro.faults.resilient import DegradationRecord
from repro.faults.shards import ShardFaultPlan
from repro.obs.events import DEGRADATION, SPAN_MERGE
from repro.obs.tracer import NULL_TRACER, TraceCollector
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import ArrivalOrder, CanonicalOrder
from repro.types import ElementId, SeedLike, SetId, make_rng

_SEED_SPACE = 2**63

#: How shard edges reach their workers.
INGEST_MODES: Tuple[str, ...] = ("materialize", "stream")


def validate_transport(transport: Optional[object]) -> None:
    """Fail fast on a ``transport`` argument that can never resolve.

    Catches unknown registry names and wrong types *before* any shard
    work runs; the transport itself (which may bind a socket) is only
    constructed at merge time by :func:`resolve_transport`.
    """
    if transport is None or isinstance(transport, Transport):
        return
    if isinstance(transport, str):
        from repro.distributed.transport import TRANSPORT_REGISTRY

        if transport not in TRANSPORT_REGISTRY:
            known = ", ".join(sorted(TRANSPORT_REGISTRY))
            raise InvalidParameterError(
                "transport", transport, f"known transports: {known}"
            )
        return
    raise InvalidParameterError(
        "transport",
        transport,
        "expected a registry name or a Transport instance",
    )


def resolve_transport(transport: Optional[object]) -> Transport:
    """Accept a registry name, a built :class:`Transport`, or ``None``.

    ``None`` means ``"inproc"`` — every run measures its wire bytes,
    the default just measures them without moving anything.  Shared by
    the synchronous and asynchronous executors so both accept the same
    ``transport=`` vocabulary.
    """
    validate_transport(transport)
    if isinstance(transport, Transport):
        return transport
    return make_transport(transport if transport is not None else "inproc")


@dataclass
class DistributedResult:
    """Outcome of one distributed run: cover, shard reports, comm report."""

    cover: FrozenSet[SetId]
    certificate: Dict[ElementId, SetId]
    comm: CommReport
    shards: List[ShardReport]
    algorithm: str = ""
    strategy: str = ""
    coordinator: str = ""
    workers: int = 0
    seed: int = 0
    order_name: str = "canonical"
    diagnostics: Dict[str, float] = field(default_factory=dict)
    #: Per-shard attempt histories under fault-tolerant execution; empty
    #: for plain runs (no resilience knobs set).
    outcomes: Tuple[ShardOutcome, ...] = ()
    #: One record per shard abandoned by a quorum-degraded merge; empty
    #: means the cover is complete.  Mirrors ResilientAlgorithm's
    #: contract: a partial answer always carries its explicit account.
    degradations: Tuple[DegradationRecord, ...] = ()
    #: Elements the (possibly degraded) merge left uncovered, ascending.
    uncovered: Tuple[ElementId, ...] = ()
    # Operational metadata: which backend/ingest produced this result and
    # what the streaming queues did.  Excluded from equality because the
    # contract is exactly that these must NOT change the result.
    ingest: Optional[IngestReport] = field(
        default=None, compare=False, repr=False
    )
    shipping: Optional[ShippingReport] = field(
        default=None, compare=False, repr=False
    )
    transport: Optional[TransportReport] = field(
        default=None, compare=False, repr=False
    )

    @property
    def cover_size(self) -> int:
        """Number of sets in the merged cover."""
        return len(self.cover)

    @property
    def total_comm_words(self) -> int:
        """Total words moved between shards and coordinator."""
        return self.comm.total_words

    @property
    def max_message_words(self) -> int:
        """Largest single message of the merge — Theorem 2's quantity."""
        return self.comm.max_message_words

    def verify(
        self, instance: SetCoverInstance, allow_partial: bool = False
    ) -> None:
        """Raise :class:`InvalidCoverError` unless this is a valid cover.

        Same three checks as :meth:`StreamingResult.verify`: total
        certificate, witnesses inside the cover, witnesses containing
        their elements.  With ``allow_partial`` (quorum-degraded runs)
        the totality check relaxes to *accounted-for* totality: every
        element must either carry a valid witness or appear explicitly
        in :attr:`uncovered` — a silently missing element still fails.
        """
        label = f"distributed[{self.coordinator or 'merge'}]"
        reported_uncovered = set(self.uncovered)
        for u in range(instance.n):
            if u not in self.certificate:
                if allow_partial and u in reported_uncovered:
                    continue
                if allow_partial:
                    raise InvalidCoverError(
                        f"{label}: element {u} has no witness and is not "
                        "reported uncovered"
                    )
                raise InvalidCoverError(f"{label}: element {u} has no witness")
            witness = self.certificate[u]
            if witness not in self.cover:
                raise InvalidCoverError(
                    f"{label}: witness {witness} for element {u} is not in "
                    "the reported cover"
                )
            if not instance.contains(witness, u):
                raise InvalidCoverError(
                    f"{label}: set {witness} does not contain element {u}"
                )

    def is_valid(
        self, instance: SetCoverInstance, allow_partial: bool = False
    ) -> bool:
        """``True`` iff :meth:`verify` passes."""
        try:
            self.verify(instance, allow_partial=allow_partial)
        except InvalidCoverError:
            return False
        return True


def _draw_shard_seeds(
    root_seed: int, workers: int
) -> Tuple[List[int], List[int]]:
    """Pre-draw every per-shard seed serially from one root RNG.

    Fault seeds are drawn even when faults are off — adding a fault
    spec must not shift the algorithm seeds (the ExperimentRunner
    discipline).
    """
    rng = make_rng(root_seed)
    shard_seeds = [rng.randrange(_SEED_SPACE) for _ in range(workers)]
    fault_seeds = [rng.randrange(_SEED_SPACE) for _ in range(workers)]
    return shard_seeds, fault_seeds


def _reseeded_faults(
    faults: Optional[Sequence[FaultSpec]], fault_seed: int
) -> Tuple[FaultSpec, ...]:
    """The shard-local fault plan: each spec re-seeded for this shard."""
    if not faults:
        return ()
    return tuple(
        FaultSpec(
            kind=spec.kind,
            rate=spec.rate,
            seed=(fault_seed ^ spec.seed) % _SEED_SPACE,
        )
        for spec in faults
    )


def build_shard_plan_and_tasks(
    instance: SetCoverInstance,
    workers: int,
    algorithm: str = "kk",
    strategy: str = "by-set",
    order: Optional[ArrivalOrder] = None,
    seed: SeedLike = 0,
    alpha: Optional[float] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    traced: bool = False,
) -> Tuple[ShardPlan, List[ShardTask]]:
    """Route ``instance`` and return the plan plus W self-contained tasks.

    Exactly the routing and seed discipline of :func:`run_distributed`'s
    materializing path — the single source of truth the synchronous
    executor, :func:`build_shard_tasks`, and the asynchronous simulator
    (:mod:`repro.distributed.asyncsim`) all share, which is what makes
    the async/sync parity guarantee structural rather than coincidental.
    """
    if workers < 1:
        raise ConfigurationError(f"need at least 1 worker, got {workers}")
    arrival = order if order is not None else CanonicalOrder()
    root_seed = seed if seed is not None else 0
    edges = arrival.apply(list(instance.edges()))
    router = ShardRouter(strategy=strategy, workers=workers, seed=root_seed)
    plan = router.route_edges(instance, edges, order_name=arrival.name)
    shard_seeds, fault_seeds = _draw_shard_seeds(root_seed, workers)
    shape = InstanceShape.of(instance)
    tasks = [
        ShardTask(
            index=index,
            algorithm=algorithm,
            seed=shard_seeds[index],
            shape=shape,
            edges=plan.shard_edges[index],
            set_order=plan.set_order[index],
            alpha=alpha,
            fault_specs=_reseeded_faults(faults, fault_seeds[index]),
            order_name=arrival.name,
            traced=traced,
        )
        for index in range(workers)
    ]
    return plan, tasks


def build_shard_tasks(
    instance: SetCoverInstance,
    workers: int,
    algorithm: str = "kk",
    strategy: str = "by-set",
    order: Optional[ArrivalOrder] = None,
    seed: SeedLike = 0,
    alpha: Optional[float] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    traced: bool = False,
) -> List[ShardTask]:
    """Route ``instance`` and return the W self-contained shard tasks.

    Exactly the tasks :func:`run_distributed` would execute under the
    materializing ingest path — exposed so tests (and remote transports,
    eventually) can pickle, ship, and replay shard work without the
    executor.
    """
    _, tasks = build_shard_plan_and_tasks(
        instance,
        workers,
        algorithm=algorithm,
        strategy=strategy,
        order=order,
        seed=seed,
        alpha=alpha,
        faults=faults,
        traced=traced,
    )
    return tasks


def run_distributed(
    instance: SetCoverInstance,
    workers: int,
    algorithm: str = "kk",
    strategy: str = "by-set",
    coordinator: str = "chain",
    order: Optional[ArrivalOrder] = None,
    seed: SeedLike = 0,
    alpha: Optional[float] = None,
    max_workers: int = 1,
    comm_budget: Optional[CommBudget] = None,
    faults: Optional[Sequence[FaultSpec]] = None,
    collector: Optional[TraceCollector] = None,
    threshold: Optional[float] = None,
    adaptive_threshold: bool = False,
    comm_log: bool = False,
    backend: Optional[str] = None,
    transport: Optional[object] = None,
    ingest: str = "materialize",
    chunk_size: int = 4096,
    queue_depth: int = 8,
    shard_faults: Optional[ShardFaultPlan] = None,
    min_shards: Optional[int] = None,
    deadline_steps: Optional[int] = None,
    max_attempts: int = 3,
    backoff_steps: int = 1,
) -> DistributedResult:
    """Run ``algorithm`` over ``instance`` sharded across ``workers``.

    Parameters
    ----------
    workers:
        Number of simulated shards ``W`` (≥ 1).  This is a *semantic*
        parameter — it changes the partition and hence the result.
    max_workers:
        Real executor parallelism (threads or processes, ≥ 1).  This is
        an *operational* parameter — it must not, and does not, change
        the result.
    order:
        Arrival order applied to the canonical edge enumeration before
        routing; defaults to :class:`CanonicalOrder`.
    comm_budget:
        Optional hard cap on total merge communication; crossing it
        raises :class:`~repro.errors.CommBudgetError`.
    faults:
        Fault specs applied *per shard* to each shard's edge sequence
        (each shard re-seeds the specs from its own pre-drawn fault
        seed, so shards fail independently as real machines would).
    collector:
        Attach to record per-shard (``shard[i]``) and merge traces.
    threshold:
        Protocol coordinators' (chain, tree) fixed greedy
        take-threshold override.
    adaptive_threshold:
        Re-estimate τ from the forwarded state at every merge step
        (chain, tree); mutually exclusive with ``threshold``.
    comm_log:
        Keep the full per-message log in the comm report (tests only).
    backend:
        Execution backend name — ``"serial"``, ``"thread"``, or
        ``"process"`` (see :mod:`repro.distributed.backends`).  Default
        ``None`` means ``"thread"``, the historical behaviour.
        Operational: every backend produces the identical result.
    transport:
        Wire transport for merge messages — a registry name
        (``"inproc"``, ``"loopback"``, ``"socket"``) or a constructed
        :class:`~repro.distributed.transport.Transport` (tests inject
        fault-configured loopbacks this way).  Default ``None`` means
        ``"inproc"``.  Operational: every transport produces the
        identical cover/certificate/comm report; only the
        :attr:`DistributedResult.transport` byte accounting differs.
        The transport is closed before returning.
    ingest:
        ``"materialize"`` routes every shard fully before execution;
        ``"stream"`` feeds shards through bounded per-shard chunk
        queues so routing overlaps shard ingest.  Operational.
    chunk_size:
        Edges per routed chunk under streaming ingest.
    queue_depth:
        Maximum chunks a shard's hand-off queue may hold under
        streaming ingest; a full queue blocks the router
        (backpressure), bounding the in-flight buffer.
    shard_faults:
        Machine-level fault plan (:class:`~repro.faults.shards.ShardFaultPlan`):
        crashes and stragglers afflicting specific shards.  Setting any
        resilience knob routes execution through
        :func:`~repro.distributed.backends.run_tasks_with_recovery`
        (retry-with-backoff on a logical clock) and requires the
        materializing ingest path.
    min_shards:
        Quorum policy: the merge proceeds — degraded, with explicit
        :class:`~repro.faults.resilient.DegradationRecord`s — as long
        as at least this many shards survive.  Default ``None`` demands
        all ``workers`` shards, so any abandoned shard raises its typed
        :class:`~repro.errors.ShardCrashError` /
        :class:`~repro.errors.ShardTimeoutError`.
    deadline_steps:
        Per-attempt deadline on the logical clock; an attempt finishing
        later times out and is retried, then abandoned.
    max_attempts:
        Attempts per shard before abandoning it (retries re-seed via
        :func:`~repro.analysis.runner.derive_retry_seed`).
    backoff_steps:
        Logical steps between a failed attempt and the next.
    """
    if workers < 1:
        raise ConfigurationError(f"need at least 1 worker, got {workers}")
    if max_workers < 1:
        raise InvalidParameterError(
            "max_workers", max_workers, "need at least 1 executor worker"
        )
    if ingest not in INGEST_MODES:
        known = ", ".join(INGEST_MODES)
        raise InvalidParameterError(
            "ingest", ingest, f"known ingest modes: {known}"
        )
    if chunk_size < 1:
        raise InvalidParameterError(
            "chunk_size", chunk_size, "need at least 1 edge per chunk"
        )
    if queue_depth < 1:
        raise InvalidParameterError(
            "queue_depth", queue_depth, "need at least 1 chunk of queue depth"
        )
    backend_impl = make_backend(backend if backend is not None else "thread")
    # Construct the merger before any shard work: an unknown coordinator
    # must fail fast, not after W shards have already run.  The transport
    # name is validated here too, but the transport itself is built at
    # merge time so a shard failure cannot leak a bound socket.
    merger = make_coordinator(
        coordinator,
        CoordinatorOptions(
            threshold=threshold, adaptive_threshold=adaptive_threshold
        ),
    )
    validate_transport(transport)

    resilient = (
        shard_faults is not None
        or min_shards is not None
        or deadline_steps is not None
    )
    if resilient and ingest == "stream":
        raise InvalidParameterError(
            "ingest",
            ingest,
            "shard fault tolerance (shard_faults/min_shards/deadline_steps) "
            "requires the materializing ingest path",
        )
    if min_shards is not None and not 1 <= min_shards <= workers:
        raise InvalidParameterError(
            "min_shards",
            min_shards,
            f"must be between 1 and workers={workers}",
        )

    arrival = order if order is not None else CanonicalOrder()
    root_seed = seed if seed is not None else 0
    edges = arrival.apply(list(instance.edges()))
    router = ShardRouter(strategy=strategy, workers=workers, seed=root_seed)
    shard_seeds, fault_seeds = _draw_shard_seeds(root_seed, workers)
    shape = InstanceShape.of(instance)
    traced = collector is not None

    def make_task(
        index: int, task_edges: Sequence, set_order: Sequence[SetId]
    ) -> ShardTask:
        return ShardTask(
            index=index,
            algorithm=algorithm,
            seed=shard_seeds[index],
            shape=shape,
            edges=tuple(task_edges),
            set_order=tuple(set_order),
            alpha=alpha,
            fault_specs=_reseeded_faults(faults, fault_seeds[index]),
            order_name=arrival.name,
            traced=traced,
        )

    merge_tracer = (
        collector.tracer_for("merge") if collector is not None else NULL_TRACER
    )
    outcomes: List[ShardOutcome] = []
    ingest_report: Optional[IngestReport] = None
    if ingest == "stream":
        envelopes, plan, ingest_report = _run_streaming(
            instance=instance,
            router=router,
            edges=edges,
            order_name=arrival.name,
            make_task=make_task,
            backend_impl=backend_impl,
            max_workers=max_workers,
            chunk_size=chunk_size,
            queue_depth=queue_depth,
            buffering=bool(faults),
        )
        total_edges_routed = ingest_report.edges_routed
    else:
        plan = router.route_edges(instance, edges, order_name=arrival.name)
        tasks = [
            make_task(i, plan.shard_edges[i], plan.set_order[i])
            for i in range(workers)
        ]
        if resilient:
            maybe_envelopes, outcomes = run_tasks_with_recovery(
                backend_impl,
                tasks,
                max_workers,
                shard_faults=shard_faults,
                max_attempts=max_attempts,
                backoff_steps=backoff_steps,
                deadline_steps=deadline_steps,
                tracer=merge_tracer,
            )
            envelopes = [env for env in maybe_envelopes if env is not None]
        else:
            envelopes = backend_impl.run_tasks(tasks, max_workers)
        total_edges_routed = plan.total_edges

    outputs: List[Optional[ShardOutput]] = [None] * workers
    for envelope in envelopes:
        # Slot results by shard index, never by completion order.
        outputs[envelope.index] = envelope.output
        if collector is not None and envelope.trace_jsonl is not None:
            collector.adopt_jsonl(
                f"shard[{envelope.index:03d}]", envelope.trace_jsonl
            )
    shard_outputs: List[ShardOutput] = [out for out in outputs if out is not None]
    lost = [o for o in outcomes if o.abandoned]
    assert len(shard_outputs) == workers - len(lost)
    if lost:
        survivors = workers - len(lost)
        required = min_shards if min_shards is not None else workers
        if survivors < required:
            raise lost[0].to_error(
                deadline_steps=deadline_steps,
                context=(
                    f"quorum not met: {survivors}/{workers} shard(s) "
                    f"survived, need {required}"
                ),
            )
    allow_partial = bool(lost)

    comm = CommMeter(budget=comm_budget, log_messages=comm_log)
    transport_impl = resolve_transport(transport)
    try:
        with merge_tracer.span(
            SPAN_MERGE,
            coordinator=coordinator,
            strategy=strategy,
            workers=workers,
        ):
            outcome = merger.merge(
                instance,
                plan,
                shard_outputs,
                comm,
                tracer=merge_tracer,
                allow_partial=allow_partial,
                transport=transport_impl,
            )
        comm_report = comm.report()
        transport_report = transport_impl.report(
            metered_words=comm_report.total_words
        )
    finally:
        transport_impl.close()

    degradations: Tuple[DegradationRecord, ...] = ()
    if lost:
        n = instance.n
        fraction = (n - len(outcome.uncovered)) / n if n else 1.0
        records = []
        for o in lost:
            records.append(
                DegradationRecord(
                    policy="quorum-degraded",
                    relaxed_invariant="complete-cover",
                    coverage_fraction=fraction,
                    uncovered_count=len(outcome.uncovered),
                    error_type=o.error_type,
                    error_message=o.error_message,
                    details={
                        "shard": float(o.index),
                        "attempts": float(o.attempts),
                        "completion_step": float(o.completion_step),
                        "survivors": float(workers - len(lost)),
                        "workers": float(workers),
                    },
                )
            )
            if merge_tracer.enabled:
                merge_tracer.event(
                    DEGRADATION,
                    policy="quorum-degraded",
                    shard=o.index,
                    error_type=o.error_type,
                    uncovered_count=len(outcome.uncovered),
                )
        degradations = tuple(records)

    diagnostics: Dict[str, float] = dict(outcome.diagnostics)
    diagnostics["total_edges_routed"] = float(total_edges_routed)
    diagnostics["dropped_invalid_edges"] = float(
        sum(out.report.dropped_invalid for out in shard_outputs)
    )
    diagnostics["peak_shard_space_words"] = float(
        max((out.report.space.peak_words for out in shard_outputs), default=0)
    )
    if resilient:
        diagnostics["shards_lost"] = float(len(lost))
        diagnostics["shard_retries"] = float(
            sum(max(0, o.attempts - 1) for o in outcomes)
        )
        diagnostics["logical_completion_step"] = float(
            max((o.completion_step for o in outcomes), default=0)
        )
    return DistributedResult(
        cover=frozenset(outcome.cover),
        certificate=dict(outcome.certificate),
        comm=comm_report,
        shards=[out.report for out in shard_outputs],
        algorithm=algorithm,
        strategy=strategy,
        coordinator=coordinator,
        workers=workers,
        seed=int(root_seed),
        order_name=arrival.name,
        diagnostics=diagnostics,
        outcomes=tuple(outcomes),
        degradations=degradations,
        uncovered=tuple(outcome.uncovered),
        ingest=ingest_report,
        shipping=getattr(backend_impl, "last_shipping", None),
        transport=transport_report,
    )


def _run_streaming(
    instance: SetCoverInstance,
    router: ShardRouter,
    edges: Sequence,
    order_name: str,
    make_task,
    backend_impl: Backend,
    max_workers: int,
    chunk_size: int,
    queue_depth: int,
    buffering: bool,
) -> Tuple[List[ShardEnvelope], ShardPlan, IngestReport]:
    """The streaming ingest path: route chunks into shards as they run.

    Per-shard :class:`ShardAccumulator` consumers sit behind bounded
    chunk queues; the router streams chunked column batches into them,
    so shard ingest (validation, membership build, local id discovery)
    overlaps routing.  After the feed closes, each shard's algorithm
    pass executes on the chosen backend.

    Two finalization regimes:

    * in-process backends without faults execute the accumulated shard
      state directly (no second pass over the edges);
    * a fault plan needs the shard's *complete* raw sequence, and the
      process backend needs a pickled task — both make the accumulators
      buffer raw edges, which then travel as ordinary
      :class:`ShardTask` records.
    """
    workers = router.workers
    assigner = router.chunk_assigner(instance)
    base_orders = assigner.base_set_orders
    buffer_raw = buffering or not backend_impl.supports_streaming_accumulators
    accumulators = [
        ShardAccumulator(
            index,
            instance.n,
            instance.m,
            base_set_order=(base_orders[index] if base_orders else ()),
            buffer_raw=buffer_raw,
        )
        for index in range(workers)
    ]
    if buffer_raw:
        # Fault plans and pickled tasks need raw edge sequences.
        routed_chunks = assigner.iter_chunks(edges, chunk_size)
        consumers = [accumulator.feed for accumulator in accumulators]
    else:
        # Accumulator-executing backends ingest straight from column
        # slices — no per-edge tuple is built anywhere on this path.
        routed_chunks = assigner.iter_column_chunks(edges, chunk_size)
        consumers = [
            (
                lambda chunk, acc=accumulator: acc.feed_columns(
                    chunk.set_ids, chunk.elements
                )
            )
            for accumulator in accumulators
        ]
    report = stream_ingest(
        routed_chunks,
        consumers,
        chunk_size=chunk_size,
        queue_depth=queue_depth,
        threaded=(
            backend_impl.wants_threaded_ingest
            and max_workers > 1
            and workers > 1
        ),
    )
    set_orders = tuple(acc.set_order() for acc in accumulators)
    if buffer_raw:
        tasks = [
            make_task(i, accumulators[i].raw, set_orders[i])
            for i in range(workers)
        ]
        envelopes = backend_impl.run_tasks(tasks, max_workers)
    else:
        jobs = [
            (accumulators[i], make_task(i, (), set_orders[i]))
            for i in range(workers)
        ]
        envelopes = backend_impl.run_accumulated(jobs, max_workers)
    # A shape-only plan for the merge: coordinators read shard outputs,
    # not routed edges, so the per-shard sequences are not retained.
    plan = ShardPlan(
        strategy=router.strategy,
        workers=workers,
        seed=router.seed,
        shard_edges=tuple(() for _ in range(workers)),
        set_order=set_orders,
        order_name=order_name,
    )
    return envelopes, plan, report


def shard_space_reports(result: DistributedResult) -> Tuple[int, ...]:
    """Per-shard peak space in words, by shard index (convenience)."""
    return tuple(report.space.peak_words for report in result.shards)
