"""Word-level communication accounting for distributed execution.

The paper's Theorem 2 derives its space lower bound from *communication*:
a one-pass streaming algorithm induces a one-way multi-party protocol
whose longest message bounds the algorithm's memory.  The distributed
layer makes that view operational — every message a coordinator moves
between shards (or from a shard to itself) is charged to a
:class:`CommMeter`, the communication twin of
:class:`~repro.streaming.space.SpaceMeter`:

* **per-link word counts** — a link is a directed ``src->dst`` pair
  (e.g. ``shard[0]->shard[1]`` for the chain merge,
  ``shard[2]->coordinator`` for star-shaped merges);
* **peak message size** (``max_message_words``) — the quantity the
  lower bound governs;
* **total words** across every link — the end-to-end communication cost;
* optional **budget enforcement** — attaching a :class:`CommBudget`
  turns the meter into an enforcer raising a typed
  :class:`~repro.errors.CommBudgetError` the moment the total crosses
  the cap (the offending message is recorded first, mirroring the
  space meter's apply-then-raise contract; the shared discipline is
  pinned by the hypothesis property in ``tests/test_meter_contract.py``,
  and the transport layer relies on the converse ordering — the budget
  error fires *before* the message crosses the wire).

All updates are O(1); the report is a pure snapshot, so two runs that
exchange the same messages in the same order produce byte-identical
reports whatever the real thread count was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CommBudgetError, InvalidParameterError


def make_comm_budget(
    words: Optional[int], context: str = ""
) -> Optional["CommBudget"]:
    """Validated :class:`CommBudget` construction shared by every entry
    point that accepts a user-supplied word cap (``distribute`` CLI,
    the serve server's distribute handler, the serve client CLI).

    ``None`` means "unmetered" and passes through; anything else must
    be a positive integer, and violations raise the typed
    :class:`~repro.errors.InvalidParameterError` at the API boundary
    instead of the bare ``ValueError`` the dataclass guard would throw
    from deep inside meter construction.
    """
    if words is None:
        return None
    if isinstance(words, bool) or not isinstance(words, int):
        raise InvalidParameterError(
            "comm_budget", words, "must be an integer number of words"
        )
    if words <= 0:
        raise InvalidParameterError(
            "comm_budget", words, "must be a positive number of words"
        )
    return CommBudget(words, context=context)


def link_label(src: str, dst: str) -> str:
    """The canonical ``src->dst`` label of a directed link.

    Single source of truth for link naming: the meter, the coordinators,
    and the async delivery simulator all agree on this format, so a
    message delivered through the scheduler is charged to exactly the
    link a synchronous merge would have used.
    """
    return f"{src}->{dst}"


@dataclass
class CommBudget:
    """A hard cap, in words, on the *total* communication of a merge."""

    words: int
    context: str = ""

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ValueError(f"comm budget must be positive, got {self.words}")


@dataclass
class CommReport:
    """Immutable snapshot of a :class:`CommMeter`.

    ``per_link_words`` / ``per_link_messages`` map ``"src->dst"`` link
    labels to the words and message counts carried; ``messages`` holds
    the full ``(src, dst, words)`` log when the meter was built with
    ``log_messages=True`` (used by the equivalence tests to recount the
    meter's totals naively), and is empty otherwise.
    """

    total_words: int
    max_message_words: int
    num_messages: int
    per_link_words: Dict[str, int] = field(default_factory=dict)
    per_link_messages: Dict[str, int] = field(default_factory=dict)
    messages: Tuple[Tuple[str, str, int], ...] = ()

    def busiest_link(self) -> Optional[str]:
        """Label of the link carrying the most words, or ``None`` if idle.

        Ties break to the lexicographically *smallest* label, not dict
        insertion order, mirroring
        :meth:`~repro.streaming.space.SpaceReport.dominant_component` —
        two runs that charge equal-weight links in different orders must
        report the same busiest link.
        """
        if not self.per_link_words:
            return None
        return min(
            self.per_link_words.items(), key=lambda kv: (-kv[1], kv[0])
        )[0]

    def link_words(self, src: str, dst: str) -> int:
        """Words carried on the ``src->dst`` link (0 if unused)."""
        return self.per_link_words.get(link_label(src, dst), 0)


class CommMeter:
    """Tracks per-link and aggregate communication of a distributed run.

    Like the space meter, the comm meter counts idealised machine
    *words* (one per id, two per key/value pair), not Python bytes —
    that is what Theorem 2's bounds are stated in.  One meter observes
    one merge; the coordinator records every message via :meth:`record`
    and the executor snapshots :meth:`report` into the
    :class:`~repro.distributed.executor.DistributedResult`.
    """

    __slots__ = (
        "_per_link_words",
        "_per_link_messages",
        "_total",
        "_max_message",
        "_count",
        "_messages",
        "budget",
    )

    def __init__(
        self,
        budget: Optional[CommBudget] = None,
        log_messages: bool = False,
    ) -> None:
        self._per_link_words: Dict[str, int] = {}
        self._per_link_messages: Dict[str, int] = {}
        self._total = 0
        self._max_message = 0
        self._count = 0
        # The log costs O(messages) memory; it exists for audits and the
        # naive-recount equivalence tests, never for production merges.
        self._messages: Optional[List[Tuple[str, str, int]]] = (
            [] if log_messages else None
        )
        self.budget = budget

    def record(self, src: str, dst: str, words: int) -> str:
        """Charge one ``words``-word message on the ``src -> dst`` link.

        Returns the link label.  The message is recorded *before* any
        budget violation is raised, so the report of a tripped meter
        shows the totals including the offending message.
        """
        if words < 0:
            raise ValueError(f"message size must be >= 0, got {words}")
        link = link_label(src, dst)
        self._per_link_words[link] = self._per_link_words.get(link, 0) + words
        self._per_link_messages[link] = self._per_link_messages.get(link, 0) + 1
        self._total += words
        self._count += 1
        if words > self._max_message:
            self._max_message = words
        if self._messages is not None:
            self._messages.append((src, dst, words))
        budget = self.budget
        if budget is not None and self._total > budget.words:
            raise CommBudgetError(
                used=self._total,
                budget=budget.words,
                context=budget.context,
                link=link,
                message_words=words,
            )
        return link

    # -- queries ---------------------------------------------------------

    @property
    def total_words(self) -> int:
        """Total words sent across all links so far."""
        return self._total

    @property
    def max_message_words(self) -> int:
        """Largest single message recorded so far."""
        return self._max_message

    @property
    def num_messages(self) -> int:
        """Number of messages recorded so far."""
        return self._count

    def link_words(self, src: str, dst: str) -> int:
        """Words carried on the ``src->dst`` link so far (0 if unused)."""
        return self._per_link_words.get(link_label(src, dst), 0)

    def report(self) -> CommReport:
        """Snapshot of the totals and the per-link breakdown."""
        return CommReport(
            total_words=self._total,
            max_message_words=self._max_message,
            num_messages=self._count,
            per_link_words=dict(self._per_link_words),
            per_link_messages=dict(self._per_link_messages),
            messages=tuple(self._messages) if self._messages is not None else (),
        )

    def reset(self) -> None:
        """Clear every recorded message and total."""
        self._per_link_words.clear()
        self._per_link_messages.clear()
        self._total = 0
        self._max_message = 0
        self._count = 0
        if self._messages is not None:
            self._messages = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommMeter(total={self._total}, max_message={self._max_message}, "
            f"messages={self._count}, links={len(self._per_link_words)})"
        )


def words_for_cover_message(cover_size: int, certificate_size: int) -> int:
    """Words for a shard's (cover, certificate) upload: 1 + 2 per entry."""
    if cover_size < 0 or certificate_size < 0:
        raise ValueError("sizes must be >= 0")
    return cover_size + 2 * certificate_size


def words_for_candidate_message(member_counts: "list[int]") -> int:
    """Words for a candidate-set upload: one id plus one word per member."""
    return sum(1 + count for count in member_counts)
