"""Coordinators: pluggable strategies for merging shard outputs.

Every coordinator consumes the :class:`~repro.distributed.worker.ShardOutput`
list, charges each message a shard (conceptually) uploads to the
:class:`~repro.distributed.comm.CommMeter`, and returns a
:class:`MergeOutcome`.  Three strategies, trading communication for
cover quality:

``union``
    Star topology.  Every shard uploads its (cover, certificate) pair;
    the coordinator returns the union.  Cheapest communication, largest
    covers — a shard's locally necessary pick is often globally
    redundant.
``greedy``
    Star topology.  Every shard uploads its cover sets *with their
    observed membership*; the coordinator reruns offline greedy over the
    pooled candidates.  More words per shard, near-offline-greedy cover
    quality — the merge-friendly regime of Bateni–Esfandiari–Mirrokni.
``chain``
    Line topology.  The shards relay the deterministic 2√(nW) protocol
    state (uncovered set, witnesses, chosen keys) along
    ``shard[0] → … → shard[W-1]``; the coordinator announces the last
    shard's output.  Under by-set routing this reproduces
    :func:`repro.lowerbound.simple_protocol.run_simple_protocol` exactly
    — same cover size, same ``max_message_words``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.distributed.chain import chain_merge
from repro.distributed.comm import CommMeter, words_for_cover_message
from repro.distributed.router import ShardPlan
from repro.distributed.transport import (
    Transport,
    candidate_upload_wire,
    cover_upload_wire,
    handoff_wire,
    handoff_words,
    read_candidate_upload,
    read_cover_upload,
)
from repro.distributed.worker import ShardOutput
from repro.errors import (
    ConfigurationError,
    InvalidCoverError,
    InvalidParameterError,
    TransportError,
)
from repro.obs.events import MESSAGE_SENT
from repro.obs.tracer import NULL_TRACER
from repro.streaming.instance import SetCoverInstance
from repro.types import ElementId, SetId


@dataclass
class MergeOutcome:
    """A coordinator's verdict: the global cover plus merge diagnostics.

    ``uncovered`` is empty for a full merge; a quorum-degraded merge
    (``allow_partial=True`` with shard outputs missing) lists the
    elements the surviving shards could not cover — the caller turns
    that into explicit :class:`~repro.faults.resilient.DegradationRecord`s.
    """

    cover: Tuple[SetId, ...]
    certificate: Dict[ElementId, SetId]
    diagnostics: Dict[str, float] = field(default_factory=dict)
    uncovered: Tuple[ElementId, ...] = ()


def _send(
    comm: CommMeter,
    tracer,
    src: str,
    dst: str,
    words: int,
    transport: Optional[Transport] = None,
    kind: str = "message",
    payload: Optional[object] = None,
) -> object:
    """Charge one message to the meter, move it, and return the payload.

    The meter is charged *first* — a :class:`~repro.errors.CommBudgetError`
    fires before anything crosses the wire, so a budget-tripped run
    shows the over-budget message as metered but never transmitted.
    With a transport attached the payload travels as real bytes and the
    **delivered** copy is returned (merges consume the return value, so
    the wire is on the data path); without one the payload passes
    through untouched.  One charged message maps to exactly one
    transport frame, which is what makes the ``TransportReport`` frame
    counts equal the ``CommReport`` message counts structurally.
    """
    link = comm.record(src, dst, words)
    if tracer.enabled:
        tracer.event(MESSAGE_SENT, link=link, words=words)
    if transport is None:
        return payload
    return transport.send(src, dst, kind, payload)


class Coordinator:
    """Interface: merge shard outputs into one cover, metering comm.

    ``allow_partial`` is the quorum-degraded mode: ``outputs`` may be a
    *subset* of the planned shards (survivors only, in shard-index
    order) and the merge must return a valid-but-partial cover with
    :attr:`MergeOutcome.uncovered` listing what was lost — instead of
    raising on an uncoverable universe.

    ``transport`` optionally carries every charged message as real
    bytes (:mod:`repro.distributed.transport`); the merge consumes the
    *delivered* payloads, so a transport that corrupted a message would
    corrupt the merge — parity across transports is therefore a real
    end-to-end property, not a bookkeeping identity.
    """

    name = "abstract"

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        raise NotImplementedError


class UnionCoordinator(Coordinator):
    """Union of shard covers; certificates merged deterministically."""

    name = "union"

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        tracer = tracer if tracer is not None else NULL_TRACER
        cover: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        for out in outputs:
            delivered = _send(
                comm,
                tracer,
                f"shard[{out.index}]",
                "coordinator",
                words_for_cover_message(len(out.cover), len(out.certificate)),
                transport=transport,
                kind="cover",
                payload=cover_upload_wire(
                    out.index, out.cover, out.certificate
                ),
            )
            _, shard_cover, witness_pairs = read_cover_upload(delivered)
            cover.update(shard_cover)
            for u, s in witness_pairs:
                certificate.setdefault(u, s)
        uncovered = tuple(
            u for u in range(instance.n) if u not in certificate
        )
        if uncovered and not allow_partial:
            raise InvalidCoverError(
                f"union merge leaves {len(uncovered)} element(s) uncovered; "
                "shard covers do not jointly cover the universe"
            )
        return MergeOutcome(
            cover=tuple(sorted(cover)),
            certificate=certificate,
            diagnostics={"shards_contributing": float(len(outputs))},
            uncovered=uncovered,
        )


class GreedyCoordinator(Coordinator):
    """Offline greedy over the shards' candidate sets.

    Each shard uploads every set in its cover together with the
    membership it observed (1 word for the id plus 1 per member); the
    coordinator pools candidates — unioning partial views of the same
    set — and reruns classic greedy.
    """

    name = "greedy"

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        tracer = tracer if tracer is not None else NULL_TRACER
        candidates: Dict[SetId, Set[ElementId]] = {}
        for out in outputs:
            words = sum(
                1 + len(out.members_by_set.get(sid, frozenset()))
                for sid in out.cover
            )
            delivered = _send(
                comm,
                tracer,
                f"shard[{out.index}]",
                "coordinator",
                words,
                transport=transport,
                kind="candidates",
                payload=candidate_upload_wire(
                    out.index, out.cover, out.members_by_set
                ),
            )
            _, uploads = read_candidate_upload(delivered)
            for sid, members in uploads:
                candidates.setdefault(sid, set()).update(members)

        uncovered: Set[ElementId] = set(range(instance.n))
        cover: List[SetId] = []
        certificate: Dict[ElementId, SetId] = {}
        rounds = 0
        while uncovered:
            best_sid = None
            best_gain = 0
            for sid, members in candidates.items():
                gain = len(members & uncovered)
                if gain > best_gain or (
                    gain == best_gain and gain > 0 and (
                        best_sid is None or sid < best_sid
                    )
                ):
                    best_sid, best_gain = sid, gain
            if best_sid is None or best_gain == 0:
                if allow_partial:
                    break
                raise InvalidCoverError(
                    f"greedy merge stalled with {len(uncovered)} element(s) "
                    "uncovered; shard covers do not jointly cover the universe"
                )
            newly = candidates[best_sid] & uncovered
            for u in newly:
                certificate[u] = best_sid
            uncovered -= newly
            cover.append(best_sid)
            rounds += 1
        return MergeOutcome(
            cover=tuple(cover),
            certificate=certificate,
            diagnostics={
                "candidate_sets": float(len(candidates)),
                "greedy_rounds": float(rounds),
            },
            uncovered=tuple(sorted(uncovered)),
        )


class ChainCoordinator(Coordinator):
    """The deterministic 2√(nW) chain protocol over shard views.

    Parties are the shards in index order; party ``i``'s sets are the
    shard's ``set_order`` enumeration with the membership it observed.
    Each hand-off is charged to the link between the *actual* shard
    indices of consecutive surviving parties (``shard[0]->shard[1]`` in
    a full merge; e.g. ``shard[0]->shard[2]`` when shard 1 was lost to a
    quorum-degraded merge) at the forwarded state's exact word count, so
    ``max_message_words`` is the protocol's longest message — the
    quantity Theorem 2's lower bound governs.
    """

    name = "chain"

    def __init__(self, threshold: Optional[float] = None) -> None:
        self.threshold = threshold

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        tracer = tracer if tracer is not None else NULL_TRACER
        party_sets = [
            [
                (sid, set(out.members_by_set.get(sid, frozenset())))
                for sid in out.set_order
            ]
            for out in outputs
        ]
        outcome = chain_merge(
            instance.n,
            party_sets,
            threshold=self.threshold,
            partial=allow_partial,
            capture_states=transport is not None,
        )
        for i, words in enumerate(outcome.message_words):
            payload = None
            if transport is not None:
                uncovered, witnesses, chosen = outcome.forwarded_states[i]
                payload = handoff_wire(i, uncovered, witnesses, chosen)
            delivered = _send(
                comm,
                tracer,
                f"shard[{outputs[i].index}]",
                f"shard[{outputs[i + 1].index}]",
                words,
                transport=transport,
                kind="handoff",
                payload=payload,
            )
            if transport is not None and handoff_words(delivered) != words:
                raise TransportError(
                    f"hand-off {i} delivered "
                    f"{handoff_words(delivered)} word(s) of state but "
                    f"{words} were charged; the wire dropped or altered "
                    "protocol state"
                )
        return MergeOutcome(
            cover=tuple(outcome.cover),
            certificate=dict(outcome.certificate),
            diagnostics={
                "threshold": outcome.threshold,
                "protocol_messages": float(len(outcome.message_words)),
            },
            uncovered=outcome.uncovered,
        )


#: Public name -> coordinator class.
COORDINATOR_REGISTRY: Dict[str, Type[Coordinator]] = {
    "union": UnionCoordinator,
    "greedy": GreedyCoordinator,
    "chain": ChainCoordinator,
}


def registered_coordinators() -> List[str]:
    """Registry names in deterministic (sorted) order."""
    return sorted(COORDINATOR_REGISTRY)


def make_coordinator(
    name: str, threshold: Optional[float] = None
) -> Coordinator:
    """Construct a registered coordinator by name."""
    try:
        cls = COORDINATOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_coordinators())
        raise InvalidParameterError(
            "coordinator", name, f"known coordinators: {known}"
        ) from None
    if cls is ChainCoordinator:
        return ChainCoordinator(threshold=threshold)
    if threshold is not None:
        raise ConfigurationError(
            f"coordinator {name!r} does not accept a threshold"
        )
    return cls()
