"""Coordinators: pluggable strategies for merging shard outputs.

Every coordinator consumes the :class:`~repro.distributed.worker.ShardOutput`
list, charges each message a shard (conceptually) uploads to the
:class:`~repro.distributed.comm.CommMeter`, and returns a
:class:`MergeOutcome`.  Four strategies, trading communication, cover
quality, and merge latency:

``union``
    Star topology.  Every shard uploads its (cover, certificate) pair;
    the coordinator returns the union.  Cheapest communication, largest
    covers — a shard's locally necessary pick is often globally
    redundant.
``greedy``
    Star topology.  Every shard uploads its cover sets *with their
    observed membership*; the coordinator reruns offline greedy over the
    pooled candidates.  More words per shard, near-offline-greedy cover
    quality — the merge-friendly regime of Bateni–Esfandiari–Mirrokni.
``chain``
    Line topology.  The shards relay the deterministic 2√(nW) protocol
    state (uncovered set, witnesses, chosen keys) along
    ``shard[0] → … → shard[W-1]``; the coordinator announces the last
    shard's output.  Under by-set routing this reproduces
    :func:`repro.lowerbound.simple_protocol.run_simple_protocol` exactly
    — same cover size, same ``max_message_words``.
``tree``
    Tournament topology.  Every shard runs the chain party step against
    the full universe, then states pair up and merge bottom-up in
    ``⌈log₂ W⌉`` rounds — same W−1 total messages as the chain, but
    same-round hand-offs are independent, so the merge's critical path
    on the async logical clock drops from Θ(W) to Θ(log W), at the
    cost of witness-heavy early messages (tracked per round).

``chain`` and ``tree`` both accept a fixed ``threshold`` override or
``adaptive=True`` mid-merge τ re-estimation, carried through
:class:`CoordinatorOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.distributed.chain import chain_merge, tournament_merge
from repro.distributed.comm import CommMeter, words_for_cover_message
from repro.distributed.router import ShardPlan
from repro.distributed.transport import (
    Transport,
    candidate_upload_wire,
    cover_upload_wire,
    handoff_wire,
    handoff_words,
    read_candidate_upload,
    read_cover_upload,
    tree_handoff_wire,
)
from repro.distributed.worker import ShardOutput
from repro.errors import (
    ConfigurationError,
    InvalidCoverError,
    InvalidParameterError,
    TransportError,
)
from repro.obs.events import MESSAGE_SENT
from repro.obs.tracer import NULL_TRACER
from repro.streaming.instance import SetCoverInstance
from repro.types import ElementId, SetId


@dataclass
class MergeOutcome:
    """A coordinator's verdict: the global cover plus merge diagnostics.

    ``uncovered`` is empty for a full merge; a quorum-degraded merge
    (``allow_partial=True`` with shard outputs missing) lists the
    elements the surviving shards could not cover — the caller turns
    that into explicit :class:`~repro.faults.resilient.DegradationRecord`s.
    """

    cover: Tuple[SetId, ...]
    certificate: Dict[ElementId, SetId]
    diagnostics: Dict[str, float] = field(default_factory=dict)
    uncovered: Tuple[ElementId, ...] = ()


def _send(
    comm: CommMeter,
    tracer,
    src: str,
    dst: str,
    words: int,
    transport: Optional[Transport] = None,
    kind: str = "message",
    payload: Optional[object] = None,
) -> object:
    """Charge one message to the meter, move it, and return the payload.

    The meter is charged *first* — a :class:`~repro.errors.CommBudgetError`
    fires before anything crosses the wire, so a budget-tripped run
    shows the over-budget message as metered but never transmitted.
    With a transport attached the payload travels as real bytes and the
    **delivered** copy is returned (merges consume the return value, so
    the wire is on the data path); without one the payload passes
    through untouched.  One charged message maps to exactly one
    transport frame, which is what makes the ``TransportReport`` frame
    counts equal the ``CommReport`` message counts structurally.
    """
    link = comm.record(src, dst, words)
    if tracer.enabled:
        tracer.event(MESSAGE_SENT, link=link, words=words)
    if transport is None:
        return payload
    return transport.send(src, dst, kind, payload)


@dataclass(frozen=True)
class CoordinatorOptions:
    """Strategy-specific merge options, validated per coordinator.

    The typed replacement for the old ad-hoc ``threshold`` kwarg on
    :func:`make_coordinator`: every option names the CLI flag it rides
    in on, and validation rejects options the chosen strategy cannot
    honour with an error that names that flag — so
    ``--threshold``/``--adaptive-threshold`` on a star coordinator
    fails identically whether it arrives via the CLI, the executor, or
    a direct call.
    """

    #: Fixed greedy take-threshold override (``--threshold``); only the
    #: protocol coordinators (chain, tree) accept it.
    threshold: Optional[float] = None
    #: Re-estimate τ from the forwarded state at every merge step
    #: (``--adaptive-threshold``); mutually exclusive with
    #: :attr:`threshold`.
    adaptive_threshold: bool = False


class Coordinator:
    """Interface: merge shard outputs into one cover, metering comm.

    ``allow_partial`` is the quorum-degraded mode: ``outputs`` may be a
    *subset* of the planned shards (survivors only, in shard-index
    order) and the merge must return a valid-but-partial cover with
    :attr:`MergeOutcome.uncovered` listing what was lost — instead of
    raising on an uncoverable universe.

    ``transport`` optionally carries every charged message as real
    bytes (:mod:`repro.distributed.transport`); the merge consumes the
    *delivered* payloads, so a transport that corrupted a message would
    corrupt the merge — parity across transports is therefore a real
    end-to-end property, not a bookkeeping identity.
    """

    name = "abstract"
    #: Whether this strategy honours the ``--threshold`` /
    #: ``--adaptive-threshold`` options (the greedy take-threshold only
    #: exists in the protocol merges).
    accepts_threshold = False

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        raise NotImplementedError


class UnionCoordinator(Coordinator):
    """Union of shard covers; certificates merged deterministically."""

    name = "union"

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        tracer = tracer if tracer is not None else NULL_TRACER
        cover: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        for out in outputs:
            delivered = _send(
                comm,
                tracer,
                f"shard[{out.index}]",
                "coordinator",
                words_for_cover_message(len(out.cover), len(out.certificate)),
                transport=transport,
                kind="cover",
                payload=cover_upload_wire(
                    out.index, out.cover, out.certificate
                ),
            )
            _, shard_cover, witness_pairs = read_cover_upload(delivered)
            cover.update(shard_cover)
            for u, s in witness_pairs:
                certificate.setdefault(u, s)
        uncovered = tuple(
            u for u in range(instance.n) if u not in certificate
        )
        if uncovered and not allow_partial:
            raise InvalidCoverError(
                f"union merge leaves {len(uncovered)} element(s) uncovered; "
                "shard covers do not jointly cover the universe"
            )
        return MergeOutcome(
            cover=tuple(sorted(cover)),
            certificate=certificate,
            diagnostics={"shards_contributing": float(len(outputs))},
            uncovered=uncovered,
        )


class GreedyCoordinator(Coordinator):
    """Offline greedy over the shards' candidate sets.

    Each shard uploads every set in its cover together with the
    membership it observed (1 word for the id plus 1 per member); the
    coordinator pools candidates — unioning partial views of the same
    set — and reruns classic greedy.
    """

    name = "greedy"

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        tracer = tracer if tracer is not None else NULL_TRACER
        candidates: Dict[SetId, Set[ElementId]] = {}
        for out in outputs:
            words = sum(
                1 + len(out.members_by_set.get(sid, frozenset()))
                for sid in out.cover
            )
            delivered = _send(
                comm,
                tracer,
                f"shard[{out.index}]",
                "coordinator",
                words,
                transport=transport,
                kind="candidates",
                payload=candidate_upload_wire(
                    out.index, out.cover, out.members_by_set
                ),
            )
            _, uploads = read_candidate_upload(delivered)
            for sid, members in uploads:
                candidates.setdefault(sid, set()).update(members)

        uncovered: Set[ElementId] = set(range(instance.n))
        cover: List[SetId] = []
        certificate: Dict[ElementId, SetId] = {}
        rounds = 0
        while uncovered:
            best_sid = None
            best_gain = 0
            for sid, members in candidates.items():
                gain = len(members & uncovered)
                if gain > best_gain or (
                    gain == best_gain and gain > 0 and (
                        best_sid is None or sid < best_sid
                    )
                ):
                    best_sid, best_gain = sid, gain
            if best_sid is None or best_gain == 0:
                if allow_partial:
                    break
                raise InvalidCoverError(
                    f"greedy merge stalled with {len(uncovered)} element(s) "
                    "uncovered; shard covers do not jointly cover the universe"
                )
            newly = candidates[best_sid] & uncovered
            for u in newly:
                certificate[u] = best_sid
            uncovered -= newly
            cover.append(best_sid)
            rounds += 1
        return MergeOutcome(
            cover=tuple(cover),
            certificate=certificate,
            diagnostics={
                "candidate_sets": float(len(candidates)),
                "greedy_rounds": float(rounds),
            },
            uncovered=tuple(sorted(uncovered)),
        )


class ChainCoordinator(Coordinator):
    """The deterministic 2√(nW) chain protocol over shard views.

    Parties are the shards in index order; party ``i``'s sets are the
    shard's ``set_order`` enumeration with the membership it observed.
    Each hand-off is charged to the link between the *actual* shard
    indices of consecutive surviving parties (``shard[0]->shard[1]`` in
    a full merge; e.g. ``shard[0]->shard[2]`` when shard 1 was lost to a
    quorum-degraded merge) at the forwarded state's exact word count, so
    ``max_message_words`` is the protocol's longest message — the
    quantity Theorem 2's lower bound governs.
    """

    name = "chain"
    accepts_threshold = True

    def __init__(
        self,
        threshold: Optional[float] = None,
        adaptive: bool = False,
    ) -> None:
        self.threshold = threshold
        self.adaptive = adaptive

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        tracer = tracer if tracer is not None else NULL_TRACER
        party_sets = [
            [
                (sid, set(out.members_by_set.get(sid, frozenset())))
                for sid in out.set_order
            ]
            for out in outputs
        ]
        outcome = chain_merge(
            instance.n,
            party_sets,
            threshold=self.threshold,
            partial=allow_partial,
            capture_states=transport is not None,
            adaptive=self.adaptive,
        )
        for i, words in enumerate(outcome.message_words):
            payload = None
            if transport is not None:
                uncovered, witnesses, chosen = outcome.forwarded_states[i]
                payload = handoff_wire(i, uncovered, witnesses, chosen)
            delivered = _send(
                comm,
                tracer,
                f"shard[{outputs[i].index}]",
                f"shard[{outputs[i + 1].index}]",
                words,
                transport=transport,
                kind="handoff",
                payload=payload,
            )
            if transport is not None and handoff_words(delivered) != words:
                raise TransportError(
                    f"hand-off {i} delivered "
                    f"{handoff_words(delivered)} word(s) of state but "
                    f"{words} were charged; the wire dropped or altered "
                    "protocol state"
                )
        return MergeOutcome(
            cover=tuple(outcome.cover),
            certificate=dict(outcome.certificate),
            diagnostics={
                "threshold": outcome.threshold,
                "protocol_messages": float(len(outcome.message_words)),
                "max_message_words": float(outcome.max_message_words),
                "adaptive_threshold": 1.0 if self.adaptive else 0.0,
            },
            uncovered=outcome.uncovered,
        )


class TournamentCoordinator(Coordinator):
    """The chain protocol folded into a ``⌈log₂ W⌉``-round tournament.

    Parties are the shards in index order, exactly as the chain; the
    merge runs :func:`~repro.distributed.chain.tournament_merge` and
    charges each tree edge to the link between the *actual* shard
    indices of the paired parties (``shard[0]->shard[1]``,
    ``shard[2]->shard[3]``, … in round 0 of a full merge).  Same W−1
    total messages as the chain; what changes is the dependency
    structure — same-round edges are independent, which the async
    scheduler exploits to deliver them on one logical tick.  The known
    cost is message size: a leaf ships witnesses for every element it
    holds, so per-round maxima land in the diagnostics
    (``round_max_words_{r}``) next to the headline
    ``max_message_words``.
    """

    name = "tree"
    accepts_threshold = True

    def __init__(
        self,
        threshold: Optional[float] = None,
        adaptive: bool = False,
    ) -> None:
        self.threshold = threshold
        self.adaptive = adaptive

    def merge(
        self,
        instance: SetCoverInstance,
        plan: ShardPlan,
        outputs: Sequence[ShardOutput],
        comm: CommMeter,
        tracer=None,
        allow_partial: bool = False,
        transport: Optional[Transport] = None,
    ) -> MergeOutcome:
        tracer = tracer if tracer is not None else NULL_TRACER
        party_sets = [
            [
                (sid, set(out.members_by_set.get(sid, frozenset())))
                for sid in out.set_order
            ]
            for out in outputs
        ]
        outcome = tournament_merge(
            instance.n,
            party_sets,
            threshold=self.threshold,
            partial=allow_partial,
            capture_states=transport is not None,
            adaptive=self.adaptive,
        )
        for i, (round_index, src, dst) in enumerate(outcome.edges):
            words = outcome.message_words[i]
            payload = None
            if transport is not None:
                uncovered, witnesses, chosen = outcome.forwarded_states[i]
                payload = tree_handoff_wire(
                    round_index,
                    outputs[src].index,
                    outputs[dst].index,
                    uncovered,
                    witnesses,
                    chosen,
                )
            delivered = _send(
                comm,
                tracer,
                f"shard[{outputs[src].index}]",
                f"shard[{outputs[dst].index}]",
                words,
                transport=transport,
                kind="tree-handoff",
                payload=payload,
            )
            if transport is not None and handoff_words(delivered) != words:
                raise TransportError(
                    f"tree hand-off {i} (round {round_index}) delivered "
                    f"{handoff_words(delivered)} word(s) of state but "
                    f"{words} were charged; the wire dropped or altered "
                    "protocol state"
                )
        diagnostics = {
            "threshold": outcome.threshold,
            "protocol_messages": float(len(outcome.message_words)),
            "merge_rounds": float(outcome.rounds),
            "max_message_words": float(outcome.max_message_words),
            "adaptive_threshold": 1.0 if self.adaptive else 0.0,
        }
        for r, words in enumerate(outcome.round_max_words):
            diagnostics[f"round_max_words_{r}"] = float(words)
        return MergeOutcome(
            cover=tuple(outcome.cover),
            certificate=dict(outcome.certificate),
            diagnostics=diagnostics,
            uncovered=outcome.uncovered,
        )


#: Public name -> coordinator class.
COORDINATOR_REGISTRY: Dict[str, Type[Coordinator]] = {
    "union": UnionCoordinator,
    "greedy": GreedyCoordinator,
    "chain": ChainCoordinator,
    "tree": TournamentCoordinator,
}


def registered_coordinators() -> List[str]:
    """Registry names in deterministic (sorted) order."""
    return sorted(COORDINATOR_REGISTRY)


def make_coordinator(
    name: str,
    options: Optional[CoordinatorOptions] = None,
    threshold: Optional[float] = None,
) -> Coordinator:
    """Construct a registered coordinator by name.

    ``options`` carries the strategy-specific knobs
    (:class:`CoordinatorOptions`); options the named strategy cannot
    honour raise :class:`~repro.errors.ConfigurationError` naming the
    offending flag.  The legacy ``threshold`` kwarg is shorthand for
    ``CoordinatorOptions(threshold=...)`` and may not be combined with
    an explicit ``options``.
    """
    try:
        cls = COORDINATOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_coordinators())
        raise InvalidParameterError(
            "coordinator", name, f"known coordinators: {known}"
        ) from None
    if threshold is not None:
        if options is not None:
            raise ConfigurationError(
                "pass the threshold inside CoordinatorOptions, not both "
                "ways at once"
            )
        options = CoordinatorOptions(threshold=threshold)
    opts = options if options is not None else CoordinatorOptions()
    if not cls.accepts_threshold:
        if opts.threshold is not None:
            raise ConfigurationError(
                f"coordinator {name!r} does not accept --threshold; only "
                "the protocol merges (chain, tree) have a take-threshold"
            )
        if opts.adaptive_threshold:
            raise ConfigurationError(
                f"coordinator {name!r} does not accept "
                "--adaptive-threshold; only the protocol merges "
                "(chain, tree) have a take-threshold"
            )
        return cls()
    if opts.threshold is not None and opts.adaptive_threshold:
        raise ConfigurationError(
            "--threshold and --adaptive-threshold are mutually exclusive"
        )
    return cls(
        threshold=opts.threshold, adaptive=opts.adaptive_threshold
    )
