"""The deterministic chain merge — the 2√(nt) protocol, generalised.

:func:`chain_merge` is the protocol engine behind both

* :func:`repro.lowerbound.simple_protocol.run_simple_protocol`, which is
  a thin wrapper naming parties' sets ``(party, local_id)``, and
* :class:`repro.distributed.coordinator.ChainCoordinator`, which names
  them by global set id and charges each hand-off to a
  :class:`~repro.distributed.comm.CommMeter`.

The protocol (paper Section 3, full version): the state forwarded along
the chain is the still-uncovered element set, a witness set key per
element seen so far, and the keys chosen so far.  Each party greedily
takes, from its own sets, any set covering at least ``τ = √(n/t)``
still-uncovered elements, repeating until none qualifies; the last party
patches every residual element with its recorded witness.  Greedy takes
at most ``√(nt)`` sets and the residue is at most ``√(n/t) · OPT``, so
the cover is at most ``2√(nt) · OPT`` sets and each message at most
``O(n)`` words.

Two variations live alongside the literal protocol:

* **Adaptive τ** (``adaptive=True``): instead of fixing
  ``τ = √(n/t)`` before the first party acts, each party re-estimates
  ``τ = √(|uncovered| / remaining_parties)`` from the state actually
  forwarded to it.  Party 0 sees ``|uncovered| = n`` and
  ``remaining = t``, so its τ matches the fixed protocol exactly; later
  parties see a shrinking uncovered set and lower their bar with it.
* **Tournament merge** (:func:`tournament_merge`): the same per-party
  step arranged as a binary reduction tree.  Every party first runs the
  chain step *against the full universe* (its leaf state), then pairs
  of states merge bottom-up in ``⌈log₂ t⌉`` rounds — uncovered sets
  intersect, witnesses and chosen keys union — cutting the merge's
  critical path from ``t − 1`` sequential hops to ``⌈log₂ t⌉`` rounds
  of independent hand-offs, at the cost of larger early messages (a
  leaf ships witnesses for *every* element it holds).

This module deliberately does not import :mod:`repro.lowerbound`
(which imports *us*); the sequential chain loop is ~10 lines and is
re-implemented here rather than routed through ``OneWayChain``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.types import ElementId

SetKey = Hashable
#: One party's share: an *ordered* list of ``(key, members)`` pairs.
#: Enumeration order is protocol-relevant — it fixes witness choice and
#: greedy tie-breaks — so callers must pass a deterministic order.
PartySets = Sequence[Tuple[SetKey, Set[ElementId]]]


@dataclass
class ChainOutcome:
    """Result of one :func:`chain_merge` execution.

    ``message_words[i]`` is the size of the message party ``i`` forwards
    to party ``i+1``; by the protocol convention the last party's output
    announcement is excluded (the lower bound concerns inter-party
    communication), so the list has ``t - 1`` entries.
    """

    cover: List[SetKey]
    certificate: Dict[ElementId, SetKey]
    message_words: List[int]
    threshold: float
    #: Elements no surviving party could cover (non-empty only when the
    #: merge ran with ``partial=True`` over a degraded party set).
    uncovered: Tuple[ElementId, ...] = ()
    #: Per-hop snapshots of the forwarded state, parallel to
    #: ``message_words`` — ``(sorted uncovered, sorted witness pairs,
    #: chosen keys in pick order)``.  Populated only when
    #: :func:`chain_merge` ran with ``capture_states=True`` (the
    #: transport layer replays each hand-off as real bytes).
    forwarded_states: Tuple[
        Tuple[
            Tuple[ElementId, ...],
            Tuple[Tuple[ElementId, SetKey], ...],
            Tuple[SetKey, ...],
        ],
        ...,
    ] = ()
    #: τ each party actually used, one per party.  Constant under the
    #: fixed protocol; strictly recomputed per party when the merge ran
    #: with ``adaptive=True``.
    thresholds: Tuple[float, ...] = ()

    @property
    def cover_size(self) -> int:
        """Number of distinct set keys in the output cover."""
        return len(self.cover)

    @property
    def max_message_words(self) -> int:
        """Longest inter-party message in words."""
        return max(self.message_words) if self.message_words else 0


def state_words(
    uncovered: Set[ElementId],
    witnesses: Dict[ElementId, SetKey],
    chosen: Sequence[SetKey],
) -> int:
    """Words of a forwarded state: 1 per uncovered element, 2 per witness
    entry, 2 per chosen key — a key is charged at two words whatever its
    concrete type, matching the historical ``(party, local_id)``
    accounting of the simple protocol."""
    return len(uncovered) + 2 * len(witnesses) + 2 * len(chosen)


def adaptive_threshold_for(uncovered: int, remaining_parties: int) -> float:
    """Re-estimated τ: ``√(|uncovered| / remaining_parties)``.

    The first estimator call of a run (``uncovered = n``,
    ``remaining = t``) reproduces the fixed ``√(n/t)``; later calls see
    the forwarded state and lower the bar as coverage accumulates.
    Degenerate inputs are clamped: an empty uncovered set yields τ = 0
    (nothing left to take) and ``remaining_parties`` is floored at 1.
    """
    if uncovered <= 0:
        return 0.0
    return math.sqrt(uncovered / max(1, remaining_parties))


def _greedy_take(
    local: Sequence[Tuple[SetKey, Set[ElementId]]],
    uncovered: Set[ElementId],
    chosen: List[SetKey],
    tau: float,
) -> None:
    """One party's greedy phase: repeatedly take any own set with gain
    ≥ τ, in enumeration order, until a full pass takes nothing.

    Mutates ``uncovered`` and ``chosen`` in place.  The ``gain > 0``
    guard keeps the loop terminating when adaptive τ collapses to 0 —
    an empty-gain set must never be "taken" forever.
    """
    progress = True
    while progress:
        progress = False
        for key, members in local:
            gain = len(members & uncovered)
            if gain >= tau and gain > 0:
                chosen.append(key)
                uncovered -= members
                progress = True


def chain_merge(
    n: int,
    party_sets: Sequence[PartySets],
    threshold: Optional[float] = None,
    partial: bool = False,
    capture_states: bool = False,
    adaptive: bool = False,
) -> ChainOutcome:
    """Run the deterministic chain protocol over per-party set shares.

    Parameters
    ----------
    n:
        Universe size; elements are ``0..n-1`` and the union of all
        parties' sets must cover them (else :class:`ProtocolError`).
    party_sets:
        One ordered ``(key, members)`` list per party.  The same key may
        appear at several parties (partial views under by-element or
        hash sharding); its membership is the union of the views *held
        by the parties that enumerate it*, each party acting only on its
        own view as a real shard would.
    threshold:
        Greedy take-threshold; defaults to ``√(n/t)`` as in the
        analysis.
    partial:
        Quorum-degraded mode: elements no party can witness are left
        uncovered and reported in :attr:`ChainOutcome.uncovered`
        instead of raising :class:`ProtocolError`.  The default keeps
        the protocol's contract — an infeasible residue is an error.
    capture_states:
        Also snapshot each hand-off's forwarded state into
        :attr:`ChainOutcome.forwarded_states` so a transport can ship
        the exact state the word count was charged for.  Off by
        default: the snapshots copy O(n) state per hop.
    adaptive:
        Re-estimate ``τ = √(|uncovered| / remaining_parties)`` at every
        party from the forwarded state instead of fixing ``√(n/t)`` up
        front (mutually exclusive with an explicit ``threshold``).  The
        τ each party used lands in :attr:`ChainOutcome.thresholds`.
    """
    t = len(party_sets)
    if t < 1:
        raise ConfigurationError(f"need at least 1 party, got {t}")
    if adaptive and threshold is not None:
        raise ConfigurationError(
            "adaptive re-estimation and an explicit threshold are "
            "mutually exclusive"
        )
    tau = threshold if threshold is not None else math.sqrt(n / t)

    uncovered: Set[ElementId] = set(range(n))
    witnesses: Dict[ElementId, SetKey] = {}
    chosen: List[SetKey] = []
    # Membership views accumulated along the chain, for certificate
    # construction — a later party's view of a repeated key extends an
    # earlier one's.
    members_by_key: Dict[SetKey, Set[ElementId]] = {}
    message_words: List[int] = []
    forwarded_states: List[
        Tuple[
            Tuple[ElementId, ...],
            Tuple[Tuple[ElementId, SetKey], ...],
            Tuple[SetKey, ...],
        ]
    ] = []

    thresholds: List[float] = []

    for index, share in enumerate(party_sets):
        is_last = index == t - 1
        local = [(key, set(members)) for key, members in share]
        for key, members in local:
            members_by_key.setdefault(key, set()).update(members)
        # Record witnesses for any still-uncovered element this party holds.
        for key, members in local:
            for u in members:
                if u in uncovered and u not in witnesses:
                    witnesses[u] = key
        # Greedy phase over this party's own sets.
        if adaptive:
            tau = adaptive_threshold_for(len(uncovered), t - index)
        thresholds.append(tau)
        _greedy_take(local, uncovered, chosen, tau)
        if is_last:
            # Patch the residue with recorded witnesses.
            unpatchable: List[ElementId] = []
            for u in sorted(uncovered):
                witness = witnesses.get(u)
                if witness is None:
                    if partial:
                        unpatchable.append(u)
                        continue
                    raise ProtocolError(
                        f"element {u} is covered by no party's sets; "
                        "instance infeasible"
                    )
                chosen.append(witness)
            uncovered = set(unpatchable)
        else:
            message_words.append(state_words(uncovered, witnesses, chosen))
            if capture_states:
                forwarded_states.append(
                    (
                        tuple(sorted(uncovered)),
                        tuple(sorted(witnesses.items())),
                        tuple(chosen),
                    )
                )

    # Deduplicate the chosen list (a witness may repeat a greedy pick,
    # and a repeated key may be taken by two parties).
    seen: Set[SetKey] = set()
    cover: List[SetKey] = []
    for pick in chosen:
        if pick not in seen:
            seen.add(pick)
            cover.append(pick)

    certificate: Dict[ElementId, SetKey] = {}
    for key in cover:
        for u in members_by_key.get(key, ()):
            certificate.setdefault(u, key)
    missing = [u for u in range(n) if u not in certificate]
    if missing and not partial:
        raise ProtocolError(
            f"protocol output misses {len(missing)} element(s), e.g. "
            f"{missing[:5]}"
        )

    return ChainOutcome(
        cover=cover,
        certificate=certificate,
        message_words=message_words,
        threshold=thresholds[0],
        uncovered=tuple(missing),
        forwarded_states=tuple(forwarded_states),
        thresholds=tuple(thresholds),
    )


@dataclass
class TournamentOutcome:
    """Result of one :func:`tournament_merge` execution.

    ``message_words[i]`` is the size of the state shipped over
    ``edges[i]``; both lists run in hand-off order (round by round,
    left to right), ``t - 1`` entries total — a tournament moves exactly
    as many messages as a chain, just ``⌈log₂ t⌉`` deep instead of
    ``t - 1`` deep.
    """

    cover: List[SetKey]
    certificate: Dict[ElementId, SetKey]
    message_words: List[int]
    threshold: float
    #: Number of merge rounds, ``⌈log₂ t⌉`` (0 for a single party).
    rounds: int
    #: One ``(round, src, dst)`` triple per hand-off: in round ``round``
    #: the subtree hosted at party ``src`` ships its state to party
    #: ``dst``, which survives into the next round.
    edges: Tuple[Tuple[int, int, int], ...] = ()
    #: Largest message of each round — the tree's known cost: early
    #: rounds ship witness-heavy leaf states the chain amortises.
    round_max_words: Tuple[int, ...] = ()
    #: τ used at each greedy invocation: the ``t`` leaf phases first,
    #: then one entry per internal node in hand-off order.  Constant
    #: under fixed τ; recomputed from the merged state when
    #: ``adaptive=True`` (adaptive leaves defer greedy, recorded as
    #: ``inf``).
    thresholds: Tuple[float, ...] = ()
    #: Elements no surviving party could cover (``partial=True`` only).
    uncovered: Tuple[ElementId, ...] = ()
    #: Per-hand-off snapshots of the shipped state, parallel to
    #: ``message_words``; populated only under ``capture_states=True``.
    forwarded_states: Tuple[
        Tuple[
            Tuple[ElementId, ...],
            Tuple[Tuple[ElementId, SetKey], ...],
            Tuple[SetKey, ...],
        ],
        ...,
    ] = ()

    @property
    def cover_size(self) -> int:
        """Number of distinct set keys in the output cover."""
        return len(self.cover)

    @property
    def max_message_words(self) -> int:
        """Longest hand-off in words."""
        return max(self.message_words) if self.message_words else 0


def tournament_rounds(
    parties: Sequence[int],
) -> List[List[Tuple[int, int]]]:
    """Pairing schedule of a bottom-up tournament over ``parties``.

    Returns one list per round; each round pairs adjacent survivors
    ``(src, dst)`` left to right — ``src`` ships its state to ``dst``
    and ``dst`` survives; an odd trailing survivor gets a bye.  The
    schedule is pure bookkeeping shared by :func:`tournament_merge`
    (which executes it) and the async scheduler (which replays it on
    the logical clock), so both agree on every edge.
    """
    actives = list(parties)
    rounds: List[List[Tuple[int, int]]] = []
    while len(actives) > 1:
        pairs: List[Tuple[int, int]] = []
        survivors: List[int] = []
        for j in range(0, len(actives) - 1, 2):
            pairs.append((actives[j], actives[j + 1]))
            survivors.append(actives[j + 1])
        if len(actives) % 2:
            survivors.append(actives[-1])
        rounds.append(pairs)
        actives = survivors
    return rounds


def tournament_merge(
    n: int,
    party_sets: Sequence[PartySets],
    threshold: Optional[float] = None,
    partial: bool = False,
    capture_states: bool = False,
    adaptive: bool = False,
) -> TournamentOutcome:
    """Run the chain protocol's party step as a binary reduction tree.

    Every party first plays the chain step *against the full universe*
    — record a witness for each held element, then greedily take own
    sets with gain ≥ τ — producing ``t`` independent leaf states.
    Pairs of states then merge bottom-up per
    :func:`tournament_rounds`: uncovered sets intersect (an element is
    still uncovered only if neither side covered it), witness maps
    union with the shipped (left) side winning collisions, chosen lists
    concatenate, and the receiving host runs the greedy step over its
    *own* sets against the merged uncovered set.  The last survivor
    patches the residue with recorded witnesses, as the chain's last
    party does.

    τ is where the fixed and adaptive modes genuinely part ways:

    * **Fixed** (default ``√(n/t)``, or ``threshold``): every node
      greedies at the chain's τ.  Protocol-literal but naive — leaves
      act blind against the full universe, so up to ``t`` parties
      duplicate coverage the chain's sequential state would have
      shared, and the cover degrades roughly linearly in ``t``.  (The
      internal-node re-greedy is then provably a no-op: a host's gains
      only shrink once its leaf greedy has terminated.)
    * **Adaptive** (``adaptive=True``):
      ``τ = √(|uncovered| / merged_peers)``, re-estimated at each node
      from the state actually forwarded to it, where ``merged_peers``
      is the number of *other* parties' states folded into the node
      (``subtree_size - 1``).  A leaf has absorbed no peer state, so
      its τ is ∞ — it only records witnesses and defers greedy
      entirely; the root has absorbed ``t - 1`` peers, so it greedies
      at the chain's end-of-run rate ``≈ √(|uncovered|/t)``.  Picks are
      thus made only where evidence has accumulated, which empirically
      recovers most of the cover quality the fixed-τ tree throws away.
      (``t = 1`` degenerates to a single leaf acting alone at ``√n``,
      matching the one-party chain.)

    Parameters match :func:`chain_merge`; the outcome adds the round
    structure (:attr:`TournamentOutcome.edges`,
    :attr:`TournamentOutcome.round_max_words`).
    """
    t = len(party_sets)
    if t < 1:
        raise ConfigurationError(f"need at least 1 party, got {t}")
    if adaptive and threshold is not None:
        raise ConfigurationError(
            "adaptive re-estimation and an explicit threshold are "
            "mutually exclusive"
        )
    fixed_tau = threshold if threshold is not None else math.sqrt(n / t)

    members_by_key: Dict[SetKey, Set[ElementId]] = {}
    locals_by_party: List[List[Tuple[SetKey, Set[ElementId]]]] = []
    thresholds: List[float] = []
    # label -> (uncovered, witnesses, chosen) of the subtree it hosts.
    states: Dict[int, Tuple[Set[ElementId], Dict[ElementId, SetKey], List[SetKey]]] = {}
    sizes: Dict[int, int] = {}

    # Leaf phase: every party plays the chain step against the full
    # universe.  Under adaptive τ a leaf has absorbed no peer state,
    # so it defers greedy entirely (τ = ∞) and only records witnesses
    # — except the degenerate one-party tree, which acts alone at √n
    # like the one-party chain.
    for index, share in enumerate(party_sets):
        local = [(key, set(members)) for key, members in share]
        locals_by_party.append(local)
        for key, members in local:
            members_by_key.setdefault(key, set()).update(members)
        uncovered: Set[ElementId] = set(range(n))
        witnesses: Dict[ElementId, SetKey] = {}
        for key, members in local:
            for u in members:
                if u not in witnesses:
                    witnesses[u] = key
        if not adaptive:
            tau = fixed_tau
        elif t == 1:
            tau = adaptive_threshold_for(len(uncovered), 1)
        else:
            tau = math.inf
        thresholds.append(tau)
        chosen: List[SetKey] = []
        _greedy_take(local, uncovered, chosen, tau)
        states[index] = (uncovered, witnesses, chosen)
        sizes[index] = 1

    schedule = tournament_rounds(range(t))
    message_words: List[int] = []
    edges: List[Tuple[int, int, int]] = []
    round_max_words: List[int] = []
    forwarded_states: List[
        Tuple[
            Tuple[ElementId, ...],
            Tuple[Tuple[ElementId, SetKey], ...],
            Tuple[SetKey, ...],
        ]
    ] = []

    for round_index, pairs in enumerate(schedule):
        round_max = 0
        for src, dst in pairs:
            u_src, w_src, c_src = states.pop(src)
            u_dst, w_dst, c_dst = states[dst]
            words = state_words(u_src, w_src, c_src)
            message_words.append(words)
            edges.append((round_index, src, dst))
            round_max = max(round_max, words)
            if capture_states:
                forwarded_states.append(
                    (
                        tuple(sorted(u_src)),
                        tuple(sorted(w_src.items())),
                        tuple(c_src),
                    )
                )
            uncovered = u_src & u_dst
            witnesses = {**w_dst, **w_src}
            chosen = c_src + c_dst
            sizes[dst] = sizes.pop(src) + sizes[dst]
            tau = (
                adaptive_threshold_for(len(uncovered), sizes[dst] - 1)
                if adaptive
                else fixed_tau
            )
            thresholds.append(tau)
            _greedy_take(locals_by_party[dst], uncovered, chosen, tau)
            states[dst] = (uncovered, witnesses, chosen)
        round_max_words.append(round_max)

    (root,) = states
    uncovered, witnesses, chosen = states[root]
    unpatchable: List[ElementId] = []
    for u in sorted(uncovered):
        witness = witnesses.get(u)
        if witness is None:
            if partial:
                unpatchable.append(u)
                continue
            raise ProtocolError(
                f"element {u} is covered by no party's sets; "
                "instance infeasible"
            )
        chosen.append(witness)

    seen: Set[SetKey] = set()
    cover: List[SetKey] = []
    for pick in chosen:
        if pick not in seen:
            seen.add(pick)
            cover.append(pick)

    certificate: Dict[ElementId, SetKey] = {}
    for key in cover:
        for u in members_by_key.get(key, ()):
            certificate.setdefault(u, key)
    missing = [u for u in range(n) if u not in certificate]
    if missing and not partial:
        raise ProtocolError(
            f"protocol output misses {len(missing)} element(s), e.g. "
            f"{missing[:5]}"
        )

    return TournamentOutcome(
        cover=cover,
        certificate=certificate,
        message_words=message_words,
        # The headline τ is the protocol baseline √(n/t) (or the
        # override) — always finite; the per-node values, including the
        # adaptive leaves' ∞ defer-markers, are in ``thresholds``.
        threshold=fixed_tau,
        rounds=len(schedule),
        edges=tuple(edges),
        round_max_words=tuple(round_max_words),
        thresholds=tuple(thresholds),
        uncovered=tuple(missing),
        forwarded_states=tuple(forwarded_states),
    )
