"""The deterministic chain merge — the 2√(nt) protocol, generalised.

:func:`chain_merge` is the protocol engine behind both

* :func:`repro.lowerbound.simple_protocol.run_simple_protocol`, which is
  a thin wrapper naming parties' sets ``(party, local_id)``, and
* :class:`repro.distributed.coordinator.ChainCoordinator`, which names
  them by global set id and charges each hand-off to a
  :class:`~repro.distributed.comm.CommMeter`.

The protocol (paper Section 3, full version): the state forwarded along
the chain is the still-uncovered element set, a witness set key per
element seen so far, and the keys chosen so far.  Each party greedily
takes, from its own sets, any set covering at least ``τ = √(n/t)``
still-uncovered elements, repeating until none qualifies; the last party
patches every residual element with its recorded witness.  Greedy takes
at most ``√(nt)`` sets and the residue is at most ``√(n/t) · OPT``, so
the cover is at most ``2√(nt) · OPT`` sets and each message at most
``O(n)`` words.

This module deliberately does not import :mod:`repro.lowerbound`
(which imports *us*); the sequential chain loop is ~10 lines and is
re-implemented here rather than routed through ``OneWayChain``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.types import ElementId

SetKey = Hashable
#: One party's share: an *ordered* list of ``(key, members)`` pairs.
#: Enumeration order is protocol-relevant — it fixes witness choice and
#: greedy tie-breaks — so callers must pass a deterministic order.
PartySets = Sequence[Tuple[SetKey, Set[ElementId]]]


@dataclass
class ChainOutcome:
    """Result of one :func:`chain_merge` execution.

    ``message_words[i]`` is the size of the message party ``i`` forwards
    to party ``i+1``; by the protocol convention the last party's output
    announcement is excluded (the lower bound concerns inter-party
    communication), so the list has ``t - 1`` entries.
    """

    cover: List[SetKey]
    certificate: Dict[ElementId, SetKey]
    message_words: List[int]
    threshold: float
    #: Elements no surviving party could cover (non-empty only when the
    #: merge ran with ``partial=True`` over a degraded party set).
    uncovered: Tuple[ElementId, ...] = ()
    #: Per-hop snapshots of the forwarded state, parallel to
    #: ``message_words`` — ``(sorted uncovered, sorted witness pairs,
    #: chosen keys in pick order)``.  Populated only when
    #: :func:`chain_merge` ran with ``capture_states=True`` (the
    #: transport layer replays each hand-off as real bytes).
    forwarded_states: Tuple[
        Tuple[
            Tuple[ElementId, ...],
            Tuple[Tuple[ElementId, SetKey], ...],
            Tuple[SetKey, ...],
        ],
        ...,
    ] = ()

    @property
    def cover_size(self) -> int:
        """Number of distinct set keys in the output cover."""
        return len(self.cover)

    @property
    def max_message_words(self) -> int:
        """Longest inter-party message in words."""
        return max(self.message_words) if self.message_words else 0


def state_words(
    uncovered: Set[ElementId],
    witnesses: Dict[ElementId, SetKey],
    chosen: Sequence[SetKey],
) -> int:
    """Words of a forwarded state: 1 per uncovered element, 2 per witness
    entry, 2 per chosen key — a key is charged at two words whatever its
    concrete type, matching the historical ``(party, local_id)``
    accounting of the simple protocol."""
    return len(uncovered) + 2 * len(witnesses) + 2 * len(chosen)


def chain_merge(
    n: int,
    party_sets: Sequence[PartySets],
    threshold: Optional[float] = None,
    partial: bool = False,
    capture_states: bool = False,
) -> ChainOutcome:
    """Run the deterministic chain protocol over per-party set shares.

    Parameters
    ----------
    n:
        Universe size; elements are ``0..n-1`` and the union of all
        parties' sets must cover them (else :class:`ProtocolError`).
    party_sets:
        One ordered ``(key, members)`` list per party.  The same key may
        appear at several parties (partial views under by-element or
        hash sharding); its membership is the union of the views *held
        by the parties that enumerate it*, each party acting only on its
        own view as a real shard would.
    threshold:
        Greedy take-threshold; defaults to ``√(n/t)`` as in the
        analysis.
    partial:
        Quorum-degraded mode: elements no party can witness are left
        uncovered and reported in :attr:`ChainOutcome.uncovered`
        instead of raising :class:`ProtocolError`.  The default keeps
        the protocol's contract — an infeasible residue is an error.
    capture_states:
        Also snapshot each hand-off's forwarded state into
        :attr:`ChainOutcome.forwarded_states` so a transport can ship
        the exact state the word count was charged for.  Off by
        default: the snapshots copy O(n) state per hop.
    """
    t = len(party_sets)
    if t < 1:
        raise ConfigurationError(f"need at least 1 party, got {t}")
    tau = threshold if threshold is not None else math.sqrt(n / t)

    uncovered: Set[ElementId] = set(range(n))
    witnesses: Dict[ElementId, SetKey] = {}
    chosen: List[SetKey] = []
    # Membership views accumulated along the chain, for certificate
    # construction — a later party's view of a repeated key extends an
    # earlier one's.
    members_by_key: Dict[SetKey, Set[ElementId]] = {}
    message_words: List[int] = []
    forwarded_states: List[
        Tuple[
            Tuple[ElementId, ...],
            Tuple[Tuple[ElementId, SetKey], ...],
            Tuple[SetKey, ...],
        ]
    ] = []

    for index, share in enumerate(party_sets):
        is_last = index == t - 1
        local = [(key, set(members)) for key, members in share]
        for key, members in local:
            members_by_key.setdefault(key, set()).update(members)
        # Record witnesses for any still-uncovered element this party holds.
        for key, members in local:
            for u in members:
                if u in uncovered and u not in witnesses:
                    witnesses[u] = key
        # Greedy phase over this party's own sets.
        progress = True
        while progress:
            progress = False
            for key, members in local:
                gain = len(members & uncovered)
                if gain >= tau:
                    chosen.append(key)
                    uncovered -= members
                    progress = True
        if is_last:
            # Patch the residue with recorded witnesses.
            unpatchable: List[ElementId] = []
            for u in sorted(uncovered):
                witness = witnesses.get(u)
                if witness is None:
                    if partial:
                        unpatchable.append(u)
                        continue
                    raise ProtocolError(
                        f"element {u} is covered by no party's sets; "
                        "instance infeasible"
                    )
                chosen.append(witness)
            uncovered = set(unpatchable)
        else:
            message_words.append(state_words(uncovered, witnesses, chosen))
            if capture_states:
                forwarded_states.append(
                    (
                        tuple(sorted(uncovered)),
                        tuple(sorted(witnesses.items())),
                        tuple(chosen),
                    )
                )

    # Deduplicate the chosen list (a witness may repeat a greedy pick,
    # and a repeated key may be taken by two parties).
    seen: Set[SetKey] = set()
    cover: List[SetKey] = []
    for pick in chosen:
        if pick not in seen:
            seen.add(pick)
            cover.append(pick)

    certificate: Dict[ElementId, SetKey] = {}
    for key in cover:
        for u in members_by_key.get(key, ()):
            certificate.setdefault(u, key)
    missing = [u for u in range(n) if u not in certificate]
    if missing and not partial:
        raise ProtocolError(
            f"protocol output misses {len(missing)} element(s), e.g. "
            f"{missing[:5]}"
        )

    return ChainOutcome(
        cover=cover,
        certificate=certificate,
        message_words=message_words,
        threshold=tau,
        uncovered=tuple(missing),
        forwarded_states=tuple(forwarded_states),
    )
