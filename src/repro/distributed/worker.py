"""A simulated shard worker: one registry algorithm over one shard.

A :class:`Worker` receives the shard of edges the router assigned to it,
rebuilds a *local* set-cover instance from what it actually saw (dense
local ids, so any registry algorithm runs unmodified), executes the
algorithm one-pass with its own :class:`~repro.streaming.space.SpaceMeter`
inside a ``shard`` tracer span, and maps the local cover back to global
ids.  The :class:`ShardOutput` it returns is everything a coordinator
may legitimately use: the global cover and certificate, the membership
view the shard observed, and a :class:`ShardReport` of shard-local
diagnostics.

Workers are deliberately pure: a worker's output is a function of
``(edges, set_order, algorithm, seed, alpha)`` alone, never of which
thread executed it — the executor relies on this for the determinism
contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import make_algorithm
from repro.faults.injectors import InjectionReport
from repro.obs.events import SPAN_SHARD
from repro.obs.tracer import NULL_TRACER
from repro.streaming.instance import SetCoverInstance
from repro.streaming.space import SpaceReport
from repro.streaming.stream import EdgeStream
from repro.types import Edge, ElementId, SeedLike, SetId


@dataclass(frozen=True)
class InstanceShape:
    """The part of an instance a shard worker actually needs.

    A worker validates edges against the global ``(n, m)`` shape and
    labels its local instance with the global name — nothing else.
    Shipping this three-field shape instead of the full
    :class:`SetCoverInstance` keeps a pickled
    :class:`~repro.distributed.backends.ShardTask` small and
    self-contained.
    """

    n: int
    m: int
    name: str = ""

    @classmethod
    def of(cls, instance: "SetCoverInstance") -> "InstanceShape":
        return cls(n=instance.n, m=instance.m, name=instance.name or "")


@dataclass
class ShardReport:
    """Shard-local diagnostics carried into the distributed result."""

    index: int
    edges: int
    local_n: int
    local_m: int
    cover_size: int
    certificate_size: int
    space: SpaceReport
    dropped_invalid: int = 0
    injection: Optional[InjectionReport] = None


@dataclass
class ShardOutput:
    """Everything a shard uploads to (or exposes for) a coordinator.

    ``cover`` and ``certificate`` use *global* ids.  ``members_by_set``
    is the shard's membership view — for each set the shard is
    responsible for, the global elements it saw edges for (the full
    membership under by-set routing, a partial view otherwise).
    ``set_order`` is the deterministic enumeration order of the shard's
    sets (the chain merge's party order).
    """

    index: int
    cover: FrozenSet[SetId]
    certificate: Dict[ElementId, SetId]
    members_by_set: Dict[SetId, FrozenSet[ElementId]]
    set_order: Tuple[SetId, ...]
    report: ShardReport = field(
        default_factory=lambda: ShardReport(
            index=0,
            edges=0,
            local_n=0,
            local_m=0,
            cover_size=0,
            certificate_size=0,
            space=SpaceReport(peak_words=0, final_words=0),
        )
    )


_EMPTY_SPACE = SpaceReport(peak_words=0, final_words=0)


class ShardAccumulator:
    """Incremental shard ingest: the first half of a worker's pass.

    Accumulates a shard's edge stream chunk by chunk — validation
    against the global shape, local set/element id discovery, membership
    build — so routing and shard ingest can overlap (the streaming
    ingest path feeds one accumulator per shard through a bounded
    queue).  Feeding every edge in one chunk reproduces the historical
    materialize-then-run behaviour exactly; :meth:`Worker.run` does
    precisely that, so both paths share this single implementation.

    With ``buffer_raw=True`` the accumulator only buffers the raw edges
    (plus the set first-appearance order): required when a fault plan
    must see the shard's complete sequence, or when the accumulated
    shard must travel to another process as a pickled
    :class:`~repro.distributed.backends.ShardTask`.
    """

    def __init__(
        self,
        index: int,
        n: int,
        m: int,
        base_set_order: Sequence[SetId] = (),
        buffer_raw: bool = False,
    ) -> None:
        self.index = index
        self.n = n
        self.m = m
        self.buffer_raw = buffer_raw
        self.raw: List[Edge] = []
        self.clean: List[Edge] = []
        self.dropped = 0
        self.set_ids: List[SetId] = list(base_set_order)
        self._listed = set(self.set_ids)
        self.members_by_set: Dict[SetId, set] = {s: set() for s in self.set_ids}
        self._elements: set = set()
        self.edges_fed = 0

    def feed(self, edges: Sequence[Edge]) -> None:
        """Ingest one chunk of the shard's stream, in arrival order."""
        self.edges_fed += len(edges)
        if self.buffer_raw:
            self.raw.extend(edges)
            for edge in edges:
                s = edge[0]
                if 0 <= s < self.m and s not in self._listed:
                    self._listed.add(s)
                    self.set_ids.append(s)
            return
        n, m = self.n, self.m
        for edge in edges:
            s, u = edge[0], edge[1]
            if 0 <= s < m and 0 <= u < n:
                self.clean.append(edge)
                if s not in self._listed:
                    self._listed.add(s)
                    self.set_ids.append(s)
                    self.members_by_set[s] = set()
                self.members_by_set[s].add(u)
                self._elements.add(u)
            else:
                self.dropped += 1

    def feed_columns(self, set_ids: np.ndarray, elements: np.ndarray) -> None:
        """Ingest one chunk given as ``int64`` edge columns, in order.

        The column twin of :meth:`feed`, used by the shared-memory and
        column-chunk ingest paths: bounds validation and the dropped
        count are computed vectorized, then the surviving edges update
        the same per-edge structures :meth:`feed` maintains, in the
        same order — so both entry points accumulate identical state
        for identical shard streams (asserted by
        ``tests/test_distributed_shmem.py``).
        """
        k = len(set_ids)
        self.edges_fed += k
        if not k:
            return
        if self.buffer_raw:
            pairs = zip(set_ids.tolist(), elements.tolist())
            self.raw.extend(Edge(s, u) for s, u in pairs)
            m = self.m
            for s in set_ids.tolist():
                if 0 <= s < m and s not in self._listed:
                    self._listed.add(s)
                    self.set_ids.append(s)
            return
        valid = (
            (set_ids >= 0)
            & (set_ids < self.m)
            & (elements >= 0)
            & (elements < self.n)
        )
        kept = int(np.count_nonzero(valid))
        self.dropped += k - kept
        if not kept:
            return
        if kept != k:
            set_ids = set_ids[valid]
            elements = elements[valid]
        clean = self.clean
        listed = self._listed
        members_by_set = self.members_by_set
        observed = self._elements
        for s, u in zip(set_ids.tolist(), elements.tolist()):
            clean.append(Edge(s, u))
            if s not in listed:
                listed.add(s)
                self.set_ids.append(s)
                members_by_set[s] = set()
            members_by_set[s].add(u)
            observed.add(u)

    def elements_sorted(self) -> List[ElementId]:
        """The shard's observed global element ids, ascending."""
        return sorted(self._elements)

    def set_order(self) -> Tuple[SetId, ...]:
        """Base order plus first-appearance stragglers — the party order."""
        return tuple(self.set_ids)


class Worker:
    """Runs one registry algorithm over one shard's edges."""

    def __init__(
        self,
        index: int,
        algorithm: str = "kk",
        seed: SeedLike = 0,
        alpha: Optional[float] = None,
        tracer=None,
    ) -> None:
        self.index = index
        self.algorithm = algorithm
        self.seed = seed
        self.alpha = alpha
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        instance: SetCoverInstance,
        edges: Sequence[Edge],
        set_order: Sequence[SetId],
        injection: Optional[InjectionReport] = None,
    ) -> ShardOutput:
        """Execute the shard pass and return the global-id output.

        ``set_order`` is the router's deterministic enumeration of the
        sets this shard is responsible for; sets appearing in the edges
        but not listed (possible only under fault corruption) are
        appended in first-appearance order.  Edges referencing ids
        outside the global instance shape — corrupt-fault debris — are
        dropped and counted, never crash the worker.

        ``instance`` may be the full :class:`SetCoverInstance` or just
        its :class:`InstanceShape` — only ``n``, ``m`` and ``name`` are
        read, which is what lets a pickled shard task travel without
        the instance.
        """
        accumulator = ShardAccumulator(
            self.index, instance.n, instance.m, base_set_order=set_order
        )
        accumulator.feed(edges)
        return self.run_accumulated(
            accumulator, instance_name=instance.name or "", injection=injection
        )

    def run_accumulated(
        self,
        accumulator: ShardAccumulator,
        instance_name: str = "",
        injection: Optional[InjectionReport] = None,
    ) -> ShardOutput:
        """Execute the algorithm pass over an already-ingested shard.

        The streaming ingest path feeds the accumulator chunk by chunk
        while routing is still in flight, then calls this; the
        materialized path (:meth:`run`) feeds everything at once.  Both
        produce identical output for identical shard streams.
        """
        if accumulator.buffer_raw:
            raise ValueError(
                "cannot execute a buffer_raw accumulator directly; replay "
                "its raw edges through Worker.run (the fault/pickle path)"
            )
        clean = accumulator.clean
        dropped = accumulator.dropped
        set_ids = accumulator.set_ids
        members_by_set = accumulator.members_by_set
        elements = accumulator.elements_sorted()

        frozen_members = {
            s: frozenset(members) for s, members in members_by_set.items()
        }
        base_report = ShardReport(
            index=self.index,
            edges=len(clean),
            local_n=len(elements),
            local_m=len(set_ids),
            cover_size=0,
            certificate_size=0,
            space=_EMPTY_SPACE,
            dropped_invalid=dropped,
            injection=injection,
        )
        if not clean:
            # Nothing arrived: no local instance can even be built.  The
            # shard contributes an empty cover, which every coordinator
            # handles (an empty party forwards chain state untouched).
            return ShardOutput(
                index=self.index,
                cover=frozenset(),
                certificate={},
                members_by_set=frozen_members,
                set_order=tuple(set_ids),
                report=base_report,
            )

        to_local_set = {g: i for i, g in enumerate(set_ids)}
        to_local_elem = {g: i for i, g in enumerate(elements)}
        local_instance = SetCoverInstance(
            len(elements),
            (
                sorted(to_local_elem[u] for u in members_by_set[g])
                for g in set_ids
            ),
            name=f"{instance_name or 'instance'}|shard[{self.index}]",
        )
        local_edges = [
            Edge(to_local_set[edge[0]], to_local_elem[edge[1]])
            for edge in clean
        ]

        algorithm = make_algorithm(
            self.algorithm,
            local_instance,
            seed=self.seed,
            alpha=self.alpha,
            tracer=self.tracer,
        )
        with self.tracer.span(
            SPAN_SHARD,
            worker=self.index,
            algorithm=self.algorithm,
            edges=len(local_edges),
            local_n=local_instance.n,
            local_m=local_instance.m,
        ):
            result = algorithm.run(
                EdgeStream(
                    local_instance,
                    local_edges,
                    order_name=f"shard[{self.index}]",
                )
            )

        cover = frozenset(set_ids[s] for s in result.cover)
        certificate = {
            elements[u]: set_ids[s] for u, s in result.certificate.items()
        }
        base_report.cover_size = len(cover)
        base_report.certificate_size = len(certificate)
        base_report.space = result.space
        return ShardOutput(
            index=self.index,
            cover=cover,
            certificate=certificate,
            members_by_set=frozen_members,
            set_order=tuple(set_ids),
            report=base_report,
        )
