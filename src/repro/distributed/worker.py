"""A simulated shard worker: one registry algorithm over one shard.

A :class:`Worker` receives the shard of edges the router assigned to it,
rebuilds a *local* set-cover instance from what it actually saw (dense
local ids, so any registry algorithm runs unmodified), executes the
algorithm one-pass with its own :class:`~repro.streaming.space.SpaceMeter`
inside a ``shard`` tracer span, and maps the local cover back to global
ids.  The :class:`ShardOutput` it returns is everything a coordinator
may legitimately use: the global cover and certificate, the membership
view the shard observed, and a :class:`ShardReport` of shard-local
diagnostics.

Workers are deliberately pure: a worker's output is a function of
``(edges, set_order, algorithm, seed, alpha)`` alone, never of which
thread executed it — the executor relies on this for the determinism
contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.algorithms import make_algorithm
from repro.faults.injectors import InjectionReport
from repro.obs.events import SPAN_SHARD
from repro.obs.tracer import NULL_TRACER
from repro.streaming.instance import SetCoverInstance
from repro.streaming.space import SpaceReport
from repro.streaming.stream import EdgeStream
from repro.types import Edge, ElementId, SeedLike, SetId


@dataclass
class ShardReport:
    """Shard-local diagnostics carried into the distributed result."""

    index: int
    edges: int
    local_n: int
    local_m: int
    cover_size: int
    certificate_size: int
    space: SpaceReport
    dropped_invalid: int = 0
    injection: Optional[InjectionReport] = None


@dataclass
class ShardOutput:
    """Everything a shard uploads to (or exposes for) a coordinator.

    ``cover`` and ``certificate`` use *global* ids.  ``members_by_set``
    is the shard's membership view — for each set the shard is
    responsible for, the global elements it saw edges for (the full
    membership under by-set routing, a partial view otherwise).
    ``set_order`` is the deterministic enumeration order of the shard's
    sets (the chain merge's party order).
    """

    index: int
    cover: FrozenSet[SetId]
    certificate: Dict[ElementId, SetId]
    members_by_set: Dict[SetId, FrozenSet[ElementId]]
    set_order: Tuple[SetId, ...]
    report: ShardReport = field(
        default_factory=lambda: ShardReport(
            index=0,
            edges=0,
            local_n=0,
            local_m=0,
            cover_size=0,
            certificate_size=0,
            space=SpaceReport(peak_words=0, final_words=0),
        )
    )


_EMPTY_SPACE = SpaceReport(peak_words=0, final_words=0)


class Worker:
    """Runs one registry algorithm over one shard's edges."""

    def __init__(
        self,
        index: int,
        algorithm: str = "kk",
        seed: SeedLike = 0,
        alpha: Optional[float] = None,
        tracer=None,
    ) -> None:
        self.index = index
        self.algorithm = algorithm
        self.seed = seed
        self.alpha = alpha
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        instance: SetCoverInstance,
        edges: Sequence[Edge],
        set_order: Sequence[SetId],
        injection: Optional[InjectionReport] = None,
    ) -> ShardOutput:
        """Execute the shard pass and return the global-id output.

        ``set_order`` is the router's deterministic enumeration of the
        sets this shard is responsible for; sets appearing in the edges
        but not listed (possible only under fault corruption) are
        appended in first-appearance order.  Edges referencing ids
        outside the global instance shape — corrupt-fault debris — are
        dropped and counted, never crash the worker.
        """
        n, m = instance.n, instance.m
        clean: List[Edge] = []
        dropped = 0
        for edge in edges:
            if 0 <= edge[0] < m and 0 <= edge[1] < n:
                clean.append(edge)
            else:
                dropped += 1

        # Deterministic local id spaces: sets in set_order (then any
        # stragglers by first appearance), elements ascending.
        set_ids: List[SetId] = list(set_order)
        listed = set(set_ids)
        for edge in clean:
            if edge[0] not in listed:
                listed.add(edge[0])
                set_ids.append(edge[0])
        members_by_set: Dict[SetId, set] = {s: set() for s in set_ids}
        for edge in clean:
            members_by_set[edge[0]].add(edge[1])
        elements = sorted({edge[1] for edge in clean})

        frozen_members = {
            s: frozenset(members) for s, members in members_by_set.items()
        }
        base_report = ShardReport(
            index=self.index,
            edges=len(clean),
            local_n=len(elements),
            local_m=len(set_ids),
            cover_size=0,
            certificate_size=0,
            space=_EMPTY_SPACE,
            dropped_invalid=dropped,
            injection=injection,
        )
        if not clean:
            # Nothing arrived: no local instance can even be built.  The
            # shard contributes an empty cover, which every coordinator
            # handles (an empty party forwards chain state untouched).
            return ShardOutput(
                index=self.index,
                cover=frozenset(),
                certificate={},
                members_by_set=frozen_members,
                set_order=tuple(set_ids),
                report=base_report,
            )

        to_local_set = {g: i for i, g in enumerate(set_ids)}
        to_local_elem = {g: i for i, g in enumerate(elements)}
        local_instance = SetCoverInstance(
            len(elements),
            (
                sorted(to_local_elem[u] for u in members_by_set[g])
                for g in set_ids
            ),
            name=f"{instance.name or 'instance'}|shard[{self.index}]",
        )
        local_edges = [
            Edge(to_local_set[edge[0]], to_local_elem[edge[1]])
            for edge in clean
        ]

        algorithm = make_algorithm(
            self.algorithm,
            local_instance,
            seed=self.seed,
            alpha=self.alpha,
            tracer=self.tracer,
        )
        with self.tracer.span(
            SPAN_SHARD,
            worker=self.index,
            algorithm=self.algorithm,
            edges=len(local_edges),
            local_n=local_instance.n,
            local_m=local_instance.m,
        ):
            result = algorithm.run(
                EdgeStream(
                    local_instance,
                    local_edges,
                    order_name=f"shard[{self.index}]",
                )
            )

        cover = frozenset(set_ids[s] for s in result.cover)
        certificate = {
            elements[u]: set_ids[s] for u, s in result.certificate.items()
        }
        base_report.cover_size = len(cover)
        base_report.certificate_size = len(certificate)
        base_report.space = result.space
        return ShardOutput(
            index=self.index,
            cover=cover,
            certificate=certificate,
            members_by_set=frozen_members,
            set_order=tuple(set_ids),
            report=base_report,
        )
