"""Sharded multi-worker execution with communication metering.

This package makes the paper's communication view of streaming set
cover operational: an edge stream is partitioned across ``W`` simulated
workers (:mod:`~repro.distributed.router`), each worker runs any
registry algorithm shard-locally with its own space meter
(:mod:`~repro.distributed.worker`), and a pluggable coordinator
(:mod:`~repro.distributed.coordinator`) merges the shard outputs while
a :class:`~repro.distributed.comm.CommMeter` charges every message —
so every run reports ``max_message_words``, the quantity Theorem 2's
lower bound governs.  :func:`~repro.distributed.executor.run_distributed`
ties it together, deterministically in the real thread count.
"""

from repro.distributed.chain import ChainOutcome, chain_merge, state_words
from repro.distributed.comm import (
    CommBudget,
    CommMeter,
    CommReport,
    words_for_candidate_message,
    words_for_cover_message,
)
from repro.distributed.coordinator import (
    COORDINATOR_REGISTRY,
    ChainCoordinator,
    Coordinator,
    GreedyCoordinator,
    MergeOutcome,
    UnionCoordinator,
    make_coordinator,
    registered_coordinators,
)
from repro.distributed.executor import (
    DistributedResult,
    run_distributed,
    shard_space_reports,
)
from repro.distributed.router import (
    STRATEGIES,
    ShardPlan,
    ShardRouter,
    deal_round_robin,
    edge_hash_worker,
)
from repro.distributed.worker import ShardOutput, ShardReport, Worker

__all__ = [
    "COORDINATOR_REGISTRY",
    "STRATEGIES",
    "ChainCoordinator",
    "ChainOutcome",
    "CommBudget",
    "CommMeter",
    "CommReport",
    "Coordinator",
    "DistributedResult",
    "GreedyCoordinator",
    "MergeOutcome",
    "ShardOutput",
    "ShardPlan",
    "ShardReport",
    "ShardRouter",
    "UnionCoordinator",
    "Worker",
    "chain_merge",
    "deal_round_robin",
    "edge_hash_worker",
    "make_coordinator",
    "registered_coordinators",
    "run_distributed",
    "shard_space_reports",
    "state_words",
    "words_for_candidate_message",
    "words_for_cover_message",
]
