"""Sharded multi-worker execution with communication metering.

This package makes the paper's communication view of streaming set
cover operational: an edge stream is partitioned across ``W`` simulated
workers (:mod:`~repro.distributed.router`), each worker runs any
registry algorithm shard-locally with its own space meter
(:mod:`~repro.distributed.worker`), and a pluggable coordinator
(:mod:`~repro.distributed.coordinator`) merges the shard outputs while
a :class:`~repro.distributed.comm.CommMeter` charges every message —
so every run reports ``max_message_words``, the quantity Theorem 2's
lower bound governs.  :func:`~repro.distributed.executor.run_distributed`
ties it together, deterministically in the real thread count.
"""

from repro.distributed.asyncsim import (
    AsyncScheduler,
    DeliveryPolicy,
    FifoDelivery,
    FixedDelivery,
    Message,
    RandomDelivery,
    run_distributed_async,
)
from repro.distributed.backends import (
    BACKEND_REGISTRY,
    Backend,
    ProcessBackend,
    SerialBackend,
    ShardEnvelope,
    ShardOutcome,
    ShardTask,
    ThreadBackend,
    execute_shard_task,
    make_backend,
    registered_backends,
    run_tasks_with_recovery,
)
from repro.distributed.chain import ChainOutcome, chain_merge, state_words
from repro.distributed.comm import (
    CommBudget,
    CommMeter,
    CommReport,
    words_for_candidate_message,
    words_for_cover_message,
)
from repro.distributed.coordinator import (
    COORDINATOR_REGISTRY,
    ChainCoordinator,
    Coordinator,
    GreedyCoordinator,
    MergeOutcome,
    UnionCoordinator,
    make_coordinator,
    registered_coordinators,
)
from repro.distributed.executor import (
    INGEST_MODES,
    DistributedResult,
    build_shard_plan_and_tasks,
    build_shard_tasks,
    run_distributed,
    shard_space_reports,
)
from repro.distributed.ingest import (
    BoundedShardQueue,
    ColumnChunk,
    IngestReport,
    stream_ingest,
)
from repro.distributed.shmem import (
    EdgeSegment,
    ShardSpan,
    ShippingReport,
    SpanView,
    measure_shipping,
    shared_memory_available,
    ship_tasks,
)
from repro.distributed.router import (
    STRATEGIES,
    ChunkAssigner,
    ShardPlan,
    ShardRouter,
    deal_round_robin,
    edge_hash_worker,
    edge_hash_workers_columns,
)
from repro.distributed.worker import (
    InstanceShape,
    ShardAccumulator,
    ShardOutput,
    ShardReport,
    Worker,
)

__all__ = [
    "AsyncScheduler",
    "BACKEND_REGISTRY",
    "COORDINATOR_REGISTRY",
    "INGEST_MODES",
    "STRATEGIES",
    "Backend",
    "BoundedShardQueue",
    "ChunkAssigner",
    "ColumnChunk",
    "DeliveryPolicy",
    "EdgeSegment",
    "IngestReport",
    "InstanceShape",
    "FifoDelivery",
    "FixedDelivery",
    "Message",
    "ProcessBackend",
    "RandomDelivery",
    "SerialBackend",
    "ShardAccumulator",
    "ShardEnvelope",
    "ShardOutcome",
    "ShardSpan",
    "ShardTask",
    "ShippingReport",
    "SpanView",
    "ThreadBackend",
    "build_shard_plan_and_tasks",
    "build_shard_tasks",
    "edge_hash_workers_columns",
    "execute_shard_task",
    "make_backend",
    "measure_shipping",
    "registered_backends",
    "shared_memory_available",
    "ship_tasks",
    "stream_ingest",
    "ChainCoordinator",
    "ChainOutcome",
    "CommBudget",
    "CommMeter",
    "CommReport",
    "Coordinator",
    "DistributedResult",
    "GreedyCoordinator",
    "MergeOutcome",
    "ShardOutput",
    "ShardPlan",
    "ShardReport",
    "ShardRouter",
    "UnionCoordinator",
    "Worker",
    "chain_merge",
    "deal_round_robin",
    "edge_hash_worker",
    "make_coordinator",
    "registered_coordinators",
    "run_distributed",
    "run_distributed_async",
    "run_tasks_with_recovery",
    "shard_space_reports",
    "state_words",
    "words_for_candidate_message",
    "words_for_cover_message",
]
