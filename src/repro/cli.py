"""Command-line interface: regenerate any experiment from the terminal.

Usage::

    repro-setcover list
    repro-setcover run table1-row4 [--full] [--seed 7] [--markdown]
    repro-setcover run all
    repro-setcover solve INSTANCE.txt --algorithm kk --order random
    repro-setcover trace INSTANCE.txt --algorithm random-order -o out.jsonl

The ``solve`` subcommand runs one streaming algorithm over an instance
file in the :mod:`repro.streaming.io` text format and prints the cover.
``trace`` does the same run with a recording tracer attached, writes
the structured JSONL event log (see DESIGN.md §8), round-trips it
through the parser, and prints the trace summary.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.algorithms import make_algorithm, registered_algorithms
from repro.analysis.tables import render_kv
from repro.distributed.backends import registered_backends
from repro.distributed.coordinator import registered_coordinators
from repro.distributed.executor import INGEST_MODES
from repro.distributed.router import STRATEGIES
from repro.distributed.transport import registered_transports
from repro.errors import ReproError
from repro.streaming.io import load_instance
from repro.streaming.orders import ORDER_REGISTRY, make_order
from repro.streaming.stream import stream_of


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-setcover",
        description="Edge-arrival streaming Set Cover (PODS 2023 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, or 'all'")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="full-size grids (default: quick grids)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--markdown", action="store_true", help="render tables as Markdown"
    )

    solve_parser = sub.add_parser("solve", help="cover one instance file")
    solve_parser.add_argument("instance", help="instance file (io text format)")
    solve_parser.add_argument(
        "--algorithm",
        choices=registered_algorithms(),
        default="kk",
    )
    solve_parser.add_argument(
        "--order", choices=sorted(ORDER_REGISTRY), default="random"
    )
    solve_parser.add_argument("--alpha", type=float, default=None)
    solve_parser.add_argument("--seed", type=int, default=0)

    trace_parser = sub.add_parser(
        "trace",
        help="solve one instance with structured tracing and summarise",
    )
    trace_parser.add_argument("instance", help="instance file (io text format)")
    trace_parser.add_argument(
        "--algorithm",
        choices=registered_algorithms(),
        default="random-order",
    )
    trace_parser.add_argument(
        "--order", choices=sorted(ORDER_REGISTRY), default="random"
    )
    trace_parser.add_argument("--alpha", type=float, default=None)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the JSONL event log here (default: summary only)",
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help="fault-injection sweep asserting the degradation invariant",
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid (one rate, two algorithms) for smoke testing",
    )
    chaos_parser.add_argument(
        "--policy",
        choices=["fail_fast", "skip_bad_edges", "best_effort"],
        default="best_effort",
    )
    chaos_parser.add_argument(
        "--markdown", action="store_true", help="render the table as Markdown"
    )
    chaos_parser.add_argument(
        "--shards",
        action="store_true",
        help="sweep the shard-fault grid (crash/straggle/duplicate × "
        "coordinator × backend × sync/async) instead of the stream grid",
    )

    describe_parser = sub.add_parser(
        "describe", help="print statistics of an instance file"
    )
    describe_parser.add_argument("instance")
    describe_parser.add_argument(
        "--no-opt",
        action="store_true",
        help="skip the (possibly slow) OPT handle computation",
    )

    distribute_parser = sub.add_parser(
        "distribute",
        help="shard one instance across W workers and merge with comm metering",
    )
    distribute_parser.add_argument(
        "instance", help="instance file (io text format)"
    )
    distribute_parser.add_argument(
        "--workers", "-W", type=int, default=4,
        help="number of simulated shards (semantic; changes the partition)",
    )
    distribute_parser.add_argument(
        "--algorithm",
        choices=registered_algorithms(),
        default="kk",
    )
    distribute_parser.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="by-set"
    )
    # No argparse choices= here: unknown names route through the typed
    # InvalidParameterError, matching unknown backends' error contract.
    distribute_parser.add_argument(
        "--coordinator", default="chain",
        help="merge strategy: " + ", ".join(registered_coordinators()),
    )
    distribute_parser.add_argument(
        "--order", choices=sorted(ORDER_REGISTRY), default="canonical"
    )
    distribute_parser.add_argument("--alpha", type=float, default=None)
    distribute_parser.add_argument("--seed", type=int, default=0)
    distribute_parser.add_argument(
        "--threshold", type=float, default=None,
        help="fixed greedy take-threshold override for the protocol "
        "merges (chain, tree)",
    )
    distribute_parser.add_argument(
        "--adaptive-threshold", action="store_true",
        help="re-estimate the protocol merges' τ from the forwarded "
        "state at every merge step (chain, tree); mutually exclusive "
        "with --threshold",
    )
    distribute_parser.add_argument(
        "--max-workers", type=int, default=1,
        help="real executor parallelism (operational; must not change "
        "the result)",
    )
    distribute_parser.add_argument(
        "--backend", choices=registered_backends(), default="thread",
        help="execution backend for shard work (operational; every "
        "backend prints the identical report)",
    )
    distribute_parser.add_argument(
        "--transport", choices=registered_transports(), default="inproc",
        help="wire transport for merge messages (operational; every "
        "transport prints identical cover/comm rows, only the measured "
        "wire bytes differ)",
    )
    distribute_parser.add_argument(
        "--ingest", choices=sorted(INGEST_MODES), default="materialize",
        help="materialize shards up front, or stream them through "
        "bounded per-shard queues (operational)",
    )
    distribute_parser.add_argument(
        "--chunk-size", type=int, default=4096,
        help="edges per routed chunk under --ingest stream",
    )
    distribute_parser.add_argument(
        "--queue-depth", type=int, default=8,
        help="max in-flight chunks per shard under --ingest stream",
    )
    distribute_parser.add_argument(
        "--comm-budget", type=int, default=None,
        help="hard cap on total merge communication, in words",
    )
    distribute_parser.add_argument(
        "--async-sim", action="store_true",
        help="drive the merge through the asynchronous delivery "
        "simulator (seeded adversarial schedule; parity-guaranteed "
        "result, logical-step diagnostics)",
    )
    distribute_parser.add_argument(
        "--schedule-seed", type=int, default=0,
        help="delivery-schedule seed under --async-sim",
    )
    distribute_parser.add_argument(
        "--default-delay", type=int, default=1,
        help="per-link delivery delay in logical steps under --async-sim",
    )
    distribute_parser.add_argument(
        "--crash", type=float, default=0.0, metavar="RATE",
        help="per-shard permanent-crash probability (seeded from --seed)",
    )
    distribute_parser.add_argument(
        "--flaky", type=float, default=0.0, metavar="RATE",
        help="per-shard transient-crash probability (healed by one retry)",
    )
    distribute_parser.add_argument(
        "--straggle", type=float, default=0.0, metavar="RATE",
        help="per-shard straggler probability",
    )
    distribute_parser.add_argument(
        "--straggle-steps", type=int, default=3,
        help="extra logical steps a straggling shard takes per attempt",
    )
    distribute_parser.add_argument(
        "--duplicate", type=float, default=0.0, metavar="RATE",
        help="per-shard duplicate-delivery probability (--async-sim only)",
    )
    distribute_parser.add_argument(
        "--min-shards", type=int, default=None,
        help="quorum: merge degraded if at least this many shards "
        "survive (default: all must survive)",
    )
    distribute_parser.add_argument(
        "--deadline-steps", type=int, default=None,
        help="per-attempt logical-step deadline; late shards time out",
    )
    distribute_parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per shard before abandoning it",
    )
    distribute_parser.add_argument(
        "--backoff-steps", type=int, default=1,
        help="logical steps between a failed attempt and its retry",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the long-running set-cover service (see DESIGN.md §14)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (localhost only)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick a free one and print it)",
    )
    serve_parser.add_argument(
        "--port-file", default=None,
        help="write the bound port here once listening (for scripts/CI)",
    )
    serve_parser.add_argument(
        "--load", action="append", default=[], metavar="NAME=PATH",
        help="pre-load an instance file under NAME (repeatable)",
    )
    serve_parser.add_argument(
        "--space-pool", type=int, default=200_000, metavar="WORDS",
        help="global admission pool for solver space, in words",
    )
    serve_parser.add_argument(
        "--comm-pool", type=int, default=100_000, metavar="WORDS",
        help="global admission pool for merge communication, in words",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=16,
        help="admissions allowed to wait; beyond this requests are "
        "rejected with retry-after context",
    )
    serve_parser.add_argument(
        "--queue-timeout", type=float, default=30.0,
        help="seconds a queued admission may wait before a typed timeout",
    )
    serve_parser.add_argument(
        "--backend", choices=registered_backends(), default="thread",
        help="execution backend for distribute requests (operational)",
    )
    serve_parser.add_argument(
        "--max-workers", type=int, default=1,
        help="executor parallelism for distribute requests (operational)",
    )

    client_parser = sub.add_parser(
        "client", help="talk to a running serve endpoint"
    )
    client_parser.add_argument(
        "action",
        choices=[
            "ping", "load", "unload", "list", "solve", "distribute",
            "summary", "stats", "shutdown",
        ],
    )
    client_parser.add_argument("--host", default="127.0.0.1")
    client_parser.add_argument("--port", type=int, required=True)
    client_parser.add_argument("--timeout", type=float, default=60.0)
    client_parser.add_argument(
        "--name", default=None, help="instance name (load/unload/compute)"
    )
    client_parser.add_argument(
        "--file", default=None, help="instance file to upload (load)"
    )
    client_parser.add_argument(
        "--algorithm", choices=registered_algorithms(), default="kk"
    )
    client_parser.add_argument(
        "--order", choices=sorted(ORDER_REGISTRY), default="canonical"
    )
    client_parser.add_argument("--alpha", type=float, default=None)
    client_parser.add_argument("--seed", type=int, default=0)
    client_parser.add_argument(
        "--workers", "-W", type=int, default=4, help="shards (distribute)"
    )
    client_parser.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="by-set"
    )
    client_parser.add_argument("--coordinator", default="chain")
    client_parser.add_argument(
        "--comm-budget", type=int, default=None,
        help="hard cap on total merge communication, in words (distribute)",
    )
    client_parser.add_argument(
        "--fault-kind", default=None,
        help="turn a solve into a chaos cell with this injected fault",
    )
    client_parser.add_argument("--fault-rate", type=float, default=0.1)
    client_parser.add_argument(
        "--policy",
        choices=["fail_fast", "skip_bad_edges", "best_effort"],
        default="best_effort",
    )
    client_parser.add_argument(
        "--delay-ms", type=int, default=0,
        help="server-side delay knob (tests/ops; capped at 5s)",
    )
    client_parser.add_argument(
        "--max-retries", type=int, default=0,
        help="on an admission rejection carrying a retry_after hint, "
        "sleep and retry up to this many times (default: fail fast)",
    )

    generate_parser = sub.add_parser(
        "generate", help="write a synthetic instance to a file"
    )
    generate_parser.add_argument("output", help="destination file")
    generate_parser.add_argument(
        "--workload",
        choices=["uniform", "planted", "zipf", "quadratic", "two-tier", "domset"],
        default="planted",
    )
    generate_parser.add_argument("--n", type=int, default=100)
    generate_parser.add_argument("--m", type=int, default=500)
    generate_parser.add_argument("--opt-size", type=int, default=10)
    generate_parser.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import all_experiment_ids, get_experiment

    for eid in all_experiment_ids():
        module = get_experiment(eid)
        print(f"{eid:16s} {module.TITLE}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.registry import all_experiment_ids, get_experiment

    ids = (
        all_experiment_ids()
        if args.experiment == "all"
        else [args.experiment]
    )
    for eid in ids:
        module = get_experiment(eid)
        report = module.run(quick=not args.full, seed=args.seed)
        print(report.render(markdown=args.markdown))
        print()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    instance.validate()
    order = make_order(args.order, seed=args.seed)
    stream = stream_of(instance, order)
    algorithm = make_algorithm(
        args.algorithm, instance, seed=args.seed, alpha=args.alpha
    )
    result = algorithm.run(stream)
    result.verify(instance)
    print(
        render_kv(
            [
                ("instance", repr(instance)),
                ("algorithm", result.algorithm),
                ("order", args.order),
                ("cover size", result.cover_size),
                ("peak words", result.space.peak_words),
                ("valid", True),
            ]
        )
    )
    print("cover:", " ".join(str(s) for s in sorted(result.cover)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        RecordingTracer,
        events_to_jsonl,
        parse_jsonl,
        summarize,
        write_trace,
    )

    instance = load_instance(args.instance)
    instance.validate()
    order = make_order(args.order, seed=args.seed)
    stream = stream_of(instance, order)
    tracer = RecordingTracer()
    algorithm = make_algorithm(
        args.algorithm, instance, seed=args.seed, alpha=args.alpha,
        tracer=tracer,
    )
    result = algorithm.run(stream)
    result.verify(instance)
    tracer.finish()
    # Round-trip through the serializer before summarising: the summary
    # always describes what a consumer of the JSONL file would see.
    events = parse_jsonl(events_to_jsonl(tracer.events))
    if args.output is not None:
        write_trace(args.output, tracer.events)
    summary = summarize(events)
    print(
        render_kv(
            [
                ("instance", repr(instance)),
                ("algorithm", result.algorithm),
                ("order", args.order),
                ("cover size", result.cover_size),
                ("peak words", result.space.peak_words),
                ("trace events", len(events)),
            ]
        )
    )
    print(summary.render())
    if args.output is not None:
        print(f"wrote {len(events)} events to {args.output}")
    return 0


def _cmd_distribute(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.distributed import run_distributed
    from repro.distributed.asyncsim import run_distributed_async
    from repro.distributed.comm import make_comm_budget
    from repro.errors import InvalidParameterError
    from repro.faults.shards import ShardFaultPlan

    instance = load_instance(args.instance)
    instance.validate()
    order = make_order(args.order, seed=args.seed)
    budget = make_comm_budget(args.comm_budget, context="cli distribute")
    fault_rates = (args.crash, args.flaky, args.straggle, args.duplicate)
    shard_faults = None
    if any(rate > 0 for rate in fault_rates):
        shard_faults = ShardFaultPlan.seeded(
            args.workers,
            seed=args.seed,
            crash_rate=args.crash,
            flaky_rate=args.flaky,
            straggle_rate=args.straggle,
            straggle_steps=args.straggle_steps,
            duplicate_rate=args.duplicate,
        )
    resilience = dict(
        shard_faults=shard_faults,
        min_shards=args.min_shards,
        deadline_steps=args.deadline_steps,
        max_attempts=args.max_attempts,
        backoff_steps=args.backoff_steps,
    )
    common = dict(
        workers=args.workers,
        algorithm=args.algorithm,
        strategy=args.strategy,
        coordinator=args.coordinator,
        order=order,
        seed=args.seed,
        alpha=args.alpha,
        max_workers=args.max_workers,
        comm_budget=budget,
        backend=args.backend,
        transport=args.transport,
        threshold=args.threshold,
        adaptive_threshold=args.adaptive_threshold,
    )
    if args.async_sim:
        if args.ingest != "materialize":
            raise InvalidParameterError(
                "ingest",
                args.ingest,
                "the async simulator always materializes shards",
            )
        result = run_distributed_async(
            instance,
            schedule_seed=args.schedule_seed,
            default_delay=args.default_delay,
            **common,
            **resilience,
        )
    else:
        result = run_distributed(
            instance,
            ingest=args.ingest,
            chunk_size=args.chunk_size,
            queue_depth=args.queue_depth,
            **common,
            **resilience,
        )
    degraded = bool(result.degradations)
    result.verify(instance, allow_partial=degraded)
    rows = [
        ("instance", repr(instance)),
        ("algorithm", result.algorithm),
        ("strategy", result.strategy),
        ("coordinator", result.coordinator),
        ("order", result.order_name),
        ("workers", result.workers),
        ("cover size", result.cover_size),
        ("total comm words", result.total_comm_words),
        ("max message words", result.max_message_words),
        ("messages", result.comm.num_messages),
        ("busiest link", result.comm.busiest_link() or "-"),
    ]
    if "merge_rounds" in result.diagnostics:
        rows.append(
            ("merge rounds", int(result.diagnostics["merge_rounds"]))
        )
    if result.diagnostics.get("adaptive_threshold"):
        rows.append(("adaptive threshold", True))
    if result.transport is not None:
        rows.extend(
            [
                ("transport", result.transport.transport),
                ("codec", result.transport.codec),
                ("wire bytes", result.transport.total_bytes),
                ("wire frames", result.transport.total_frames),
                ("retransmits", result.transport.retransmits),
                (
                    "bytes/word overhead",
                    f"{result.transport.overhead_ratio:.3f}",
                ),
            ]
        )
    if args.async_sim:
        rows.extend(
            [
                ("logical steps", int(result.diagnostics["logical_steps"])),
                (
                    "delivered messages",
                    int(result.diagnostics["delivered_messages"]),
                ),
                ("idle ticks", int(result.diagnostics["idle_ticks"])),
                (
                    "duplicates dropped",
                    int(result.diagnostics["duplicates_dropped"]),
                ),
            ]
        )
    if result.outcomes:
        rows.append(
            (
                "shard retries",
                sum(max(0, o.attempts - 1) for o in result.outcomes),
            )
        )
        rows.append(
            ("shards lost", sum(1 for o in result.outcomes if o.abandoned))
        )
    if degraded:
        rows.append(("degradation records", len(result.degradations)))
        rows.append(("uncovered elements", len(result.uncovered)))
    rows.append(("valid", "partial" if degraded else True))
    print(render_kv(rows))
    print(
        render_table(
            ["shard", "edges", "local n", "local m", "cover", "peak words"],
            [
                (
                    r.index,
                    r.edges,
                    r.local_n,
                    r.local_m,
                    r.cover_size,
                    r.space.peak_words,
                )
                for r in result.shards
            ],
            title="per-shard:",
        )
    )
    print("cover:", " ".join(str(s) for s in sorted(result.cover)))
    for record in result.degradations:
        print(
            f"degraded: shard[{int(record.details.get('shard', -1))}] "
            f"{record.error_type or 'lost'} — coverage "
            f"{record.coverage_fraction:.3f}, "
            f"{record.uncovered_count} uncovered"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.chaos import run_chaos, run_shard_chaos

    if args.shards:
        shard_report = run_shard_chaos(seed=args.seed, quick=args.quick)
        print(shard_report.render(markdown=args.markdown))
        shard_violations = shard_report.violations()
        if shard_violations:
            print(
                f"shard chaos invariant VIOLATED in "
                f"{len(shard_violations)} cell(s)",
                file=sys.stderr,
            )
            return 1
        print(
            f"shard chaos invariant holds over {len(shard_report.rows)} "
            f"cells (seed={args.seed})"
        )
        return 0
    report = run_chaos(
        seed=args.seed, quick=args.quick, policy=args.policy
    )
    print(report.render(markdown=args.markdown))
    violations = report.violations()
    if violations:
        print(
            f"chaos invariant VIOLATED in {len(violations)} cell(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos invariant holds over {len(report.rows)} cells "
        f"(seed={args.seed})"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.analysis.stats import describe_instance

    instance = load_instance(args.instance)
    stats = describe_instance(instance, compute_opt=not args.no_opt)
    print(render_kv(stats.as_pairs(), title=f"{args.instance}:"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.errors import InvalidParameterError
    from repro.serve.registry import InstanceRegistry
    from repro.serve.server import ServeConfig, SetCoverServer

    registry = InstanceRegistry()
    for spec in args.load:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise InvalidParameterError(
                "load", spec, "expected NAME=PATH"
            )
        entry = registry.load_instance(name, load_instance(path))
        print(
            f"loaded {entry.name}: n={entry.n} m={entry.m} "
            f"edges={entry.edges}"
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        space_pool_words=args.space_pool,
        comm_pool_words=args.comm_pool,
        max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        backend=args.backend,
        max_workers=args.max_workers,
    )
    server = SetCoverServer(config=config, registry=registry)

    async def _serve() -> None:
        await server.start()
        print(f"serving on {config.host}:{server.port}", flush=True)
        if args.port_file is not None:
            Path(args.port_file).write_text(
                f"{server.port}\n", encoding="utf-8"
            )
        try:
            await server.wait_shutdown()
        finally:
            await server.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass  # ^C is the expected foreground stop; drain already ran
    print("serve stopped")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.distributed.comm import make_comm_budget
    from repro.errors import InvalidParameterError
    from repro.serve.client import ServeClient

    with ServeClient(
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        max_retries=args.max_retries,
    ) as client:
        if args.action == "ping":
            result = client.ping()
        elif args.action == "load":
            if args.name is None or args.file is None:
                raise InvalidParameterError(
                    "load", args.action, "requires --name and --file"
                )
            with open(args.file, "r", encoding="utf-8") as handle:
                result = client.load(args.name, handle.read())
        elif args.action == "unload":
            if args.name is None:
                raise InvalidParameterError(
                    "unload", args.action, "requires --name"
                )
            result = client.unload(args.name)
        elif args.action == "list":
            for entry in client.instances():
                print(render_kv(sorted(entry.items())))
            return 0
        elif args.action == "solve":
            if args.name is None:
                raise InvalidParameterError(
                    "solve", args.action, "requires --name"
                )
            result = client.solve(
                args.name,
                algorithm=args.algorithm,
                order=args.order,
                seed=args.seed,
                alpha=args.alpha,
                fault_kind=args.fault_kind,
                fault_rate=args.fault_rate,
                policy=args.policy,
                delay_ms=args.delay_ms,
            )
            cover = result.pop("cover", ())
            result.pop("certificate", None)
            print(render_kv(sorted(result.items())))
            print("cover:", " ".join(str(s) for s in cover))
            return 0
        elif args.action == "distribute":
            if args.name is None:
                raise InvalidParameterError(
                    "distribute", args.action, "requires --name"
                )
            # Validate locally so a bad budget fails before any bytes
            # travel — same typed error the batch CLI raises.
            make_comm_budget(args.comm_budget, context="cli client")
            result = client.distribute(
                args.name,
                workers=args.workers,
                algorithm=args.algorithm,
                strategy=args.strategy,
                coordinator=args.coordinator,
                order=args.order,
                seed=args.seed,
                alpha=args.alpha,
                comm_budget=args.comm_budget,
            )
            cover = result.pop("cover", ())
            result.pop("certificate", None)
            result.pop("per_link_words", None)
            print(render_kv(sorted(result.items())))
            print("cover:", " ".join(str(s) for s in cover))
            return 0
        elif args.action == "summary":
            if args.name is None:
                raise InvalidParameterError(
                    "summary", args.action, "requires --name"
                )
            result = client.summary(
                args.name,
                algorithm=args.algorithm,
                order=args.order,
                seed=args.seed,
                alpha=args.alpha,
            )
            text = result.pop("summary_text", "")
            print(render_kv(sorted(result.items())))
            print(text)
            return 0
        elif args.action == "stats":
            result = client.stats()
            pool = result.pop("pool", {})
            counters = result.pop("counters", {})
            print(render_kv(sorted(result.items())))
            print(render_kv(sorted(pool.items()), title="pool:"))
            print(render_kv(sorted(counters.items()), title="counters:"))
            return 0
        else:  # shutdown
            result = client.shutdown()
        print(render_kv(sorted(result.items())))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.generators.dominating_set import gnp_dominating_set
    from repro.generators.planted import planted_partition_instance
    from repro.generators.random_instances import (
        quadratic_family,
        two_tier_instance,
        uniform_instance,
    )
    from repro.generators.zipf import zipf_instance
    from repro.streaming.io import dump_instance

    if args.workload == "uniform":
        instance = uniform_instance(args.n, args.m, p=0.05, seed=args.seed)
    elif args.workload == "planted":
        instance = planted_partition_instance(
            args.n, args.m, opt_size=args.opt_size, seed=args.seed
        ).instance
    elif args.workload == "zipf":
        instance = zipf_instance(args.n, args.m, seed=args.seed)
    elif args.workload == "quadratic":
        instance = quadratic_family(args.n, seed=args.seed)
    elif args.workload == "two-tier":
        instance = two_tier_instance(
            args.n, num_small=args.m, num_big=max(1, args.m // 100),
            seed=args.seed,
        )
    else:  # domset
        instance = gnp_dominating_set(args.n, p=0.05, seed=args.seed)
    dump_instance(instance, args.output)
    print(f"wrote {instance!r} to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "distribute":
            return _cmd_distribute(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "describe":
            return _cmd_describe(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "client":
            return _cmd_client(args)
        if args.command == "generate":
            return _cmd_generate(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2  # unreachable with required=True subparsers


if __name__ == "__main__":
    sys.exit(main())
