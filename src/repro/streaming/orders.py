"""Arrival-order policies for edge streams.

The paper contrasts three stream orders:

* **adversarial** — worst-case order chosen by an adversary.  We provide
  several concrete adversarial heuristics (interleaving sets so that no
  prefix reveals a whole set, back-loading large sets, ...) plus support
  for fully custom permutations, since the true worst case depends on
  the algorithm under attack.
* **random** — a uniformly random permutation of the edges (the model of
  Theorem 3).
* **set-grouped** — all edges of a set arrive contiguously; this recovers
  the classical *set-arrival* model as a special case of edge arrival
  and is used for the Table-1 row-1 baseline.

Every policy is a callable object mapping a list of edges (the canonical
enumeration of :meth:`SetCoverInstance.edges`) to a reordered list, with
an explicit seed where randomness is involved.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import InvalidStreamError
from repro.types import Edge, SeedLike, make_rng

OrderFn = Callable[[Sequence[Edge]], List[Edge]]


class ArrivalOrder:
    """Base class for arrival-order policies.

    Subclasses implement :meth:`apply`.  Policies must return a
    permutation of their input — :func:`check_permutation` is available
    for defensive subclasses and is exercised by the test suite.
    """

    name = "base"

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        raise NotImplementedError

    def __call__(self, edges: Sequence[Edge]) -> List[Edge]:
        return self.apply(edges)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CanonicalOrder(ArrivalOrder):
    """Identity order: edges as enumerated (grouped by set id)."""

    name = "canonical"

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        return list(edges)


class RandomOrder(ArrivalOrder):
    """Uniformly random permutation — the model of Theorem 3."""

    name = "random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        shuffled = list(edges)
        self._rng.shuffle(shuffled)
        return shuffled


class SetGroupedOrder(ArrivalOrder):
    """All edges of each set contiguous: the classical set-arrival model.

    The order of the groups themselves is randomised (set-arrival
    streams present sets in arbitrary order), and within each group the
    elements are randomised too.
    """

    name = "set-grouped"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        groups: Dict[int, List[Edge]] = {}
        for edge in edges:
            groups.setdefault(edge.set_id, []).append(edge)
        set_ids = list(groups)
        self._rng.shuffle(set_ids)
        out: List[Edge] = []
        for set_id in set_ids:
            group = groups[set_id]
            self._rng.shuffle(group)
            out.extend(group)
        return out


class RoundRobinInterleaveOrder(ArrivalOrder):
    """Adversarial heuristic: deal edges from sets one at a time.

    Each set contributes its next edge in turn, so the stream's prefix
    spreads every set as thinly as possible — the central difficulty of
    edge arrival ("sets may be spread out over the input stream",
    Section 1.2).  Greedy-style decisions based on prefixes are maximally
    misled.
    """

    name = "round-robin"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        groups: Dict[int, List[Edge]] = {}
        for edge in edges:
            groups.setdefault(edge.set_id, []).append(edge)
        queues = []
        for set_id in sorted(groups):
            group = groups[set_id]
            self._rng.shuffle(group)
            queues.append(group)
        self._rng.shuffle(queues)
        out: List[Edge] = []
        cursor = 0
        while queues:
            cursor %= len(queues)
            queue = queues[cursor]
            out.append(queue.pop())
            if queue:
                cursor += 1
            else:
                queues.pop(cursor)
        return out


class LargeSetsLastOrder(ArrivalOrder):
    """Adversarial heuristic: reveal small sets first, big sets last.

    Algorithms that commit early are forced to buy coverage from many
    small sets before the few large sets (which an optimal cover would
    use) ever appear.
    """

    name = "large-sets-last"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        groups: Dict[int, List[Edge]] = {}
        for edge in edges:
            groups.setdefault(edge.set_id, []).append(edge)
        set_ids = sorted(groups, key=lambda s: (len(groups[s]), s))
        out: List[Edge] = []
        for set_id in set_ids:
            group = groups[set_id]
            self._rng.shuffle(group)
            out.extend(group)
        return out


class LocallyShuffledOrder(ArrivalOrder):
    """Semi-random order: an adversarial base, shuffled within windows.

    Interpolates between the two models the paper separates: starting
    from a round-robin (adversarially spread) base order, the stream is
    shuffled only within consecutive windows covering a fraction
    ``randomness`` of the stream.  ``randomness = 0`` is the pure
    adversarial base; ``randomness = 1`` is a single window — close to,
    though not exactly, a uniform permutation (long-range structure of
    the base survives only across window boundaries).

    Used by the ``order-robustness`` experiment to probe how much of
    Theorem 3's random-order assumption Algorithm 1 actually consumes —
    an empirical handle on the paper's Section-6 open problems.
    """

    name = "locally-shuffled"

    def __init__(self, randomness: float, seed: SeedLike = None) -> None:
        if not 0.0 <= randomness <= 1.0:
            raise InvalidStreamError(
                f"randomness must be in [0, 1], got {randomness}"
            )
        self.randomness = randomness
        self._rng = make_rng(seed)

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        base = RoundRobinInterleaveOrder(
            seed=self._rng.getrandbits(63)
        ).apply(edges)
        if self.randomness <= 0.0 or len(base) <= 1:
            return base
        # Ceiling, not floor: flooring collapses small positive
        # ``randomness`` on short streams to window 1 — a no-op shuffle
        # that silently reports the adversarial base as "perturbed".
        window = max(1, math.ceil(self.randomness * len(base)))
        out: List[Edge] = []
        for start in range(0, len(base), window):
            chunk = base[start : start + window]
            self._rng.shuffle(chunk)
            out.extend(chunk)
        return out


class ExplicitOrder(ArrivalOrder):
    """A fully custom permutation supplied by the caller.

    ``positions[i]`` is the index, in the canonical enumeration, of the
    edge arriving at stream position ``i``.
    """

    name = "explicit"

    def __init__(self, positions: Sequence[int]) -> None:
        self._positions = list(positions)
        if sorted(self._positions) != list(range(len(self._positions))):
            raise InvalidStreamError(
                "explicit order must be a permutation of range(len(edges))"
            )

    def apply(self, edges: Sequence[Edge]) -> List[Edge]:
        if len(edges) != len(self._positions):
            raise InvalidStreamError(
                f"explicit order of length {len(self._positions)} applied to "
                f"{len(edges)} edges"
            )
        return [edges[i] for i in self._positions]


#: Registry of order constructors by public name, for the CLI/experiments.
ORDER_REGISTRY: Dict[str, Callable[..., ArrivalOrder]] = {
    CanonicalOrder.name: CanonicalOrder,
    RandomOrder.name: RandomOrder,
    SetGroupedOrder.name: SetGroupedOrder,
    RoundRobinInterleaveOrder.name: RoundRobinInterleaveOrder,
    LargeSetsLastOrder.name: LargeSetsLastOrder,
}


def make_order(name: str, seed: SeedLike = None) -> ArrivalOrder:
    """Construct an arrival order from its registry ``name``."""
    try:
        ctor = ORDER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ORDER_REGISTRY))
        raise InvalidStreamError(
            f"unknown arrival order {name!r}; known orders: {known}"
        ) from None
    if ctor is CanonicalOrder:
        return ctor()
    return ctor(seed=seed)


def check_permutation(original: Sequence[Edge], reordered: Sequence[Edge]) -> None:
    """Raise unless ``reordered`` is a permutation of ``original``."""
    if len(original) != len(reordered):
        raise InvalidStreamError(
            f"reordered stream has {len(reordered)} edges, expected "
            f"{len(original)}"
        )
    counts: Dict[Edge, int] = {}
    for edge in original:
        counts[edge] = counts.get(edge, 0) + 1
    for edge in reordered:
        remaining = counts.get(edge, 0)
        if remaining == 0:
            raise InvalidStreamError(f"edge {edge} not in (or over-used from) original")
        counts[edge] = remaining - 1
