"""Set-cover instances: the static ground truth behind an edge stream.

A :class:`SetCoverInstance` holds a universe ``range(n)`` and a family
of ``m`` sets over it.  All streams, algorithms, verifiers, and
experiment harnesses in the library are defined against this type.

The paper (Section 2) represents an instance as a bipartite incidence
graph ``G = (S, U, E)`` with an edge ``(S_i, u)`` iff ``u ∈ S_i``; the
:meth:`SetCoverInstance.edges` iterator enumerates exactly that edge
set.  Feasibility (every element in at least one set) is the paper's
standing assumption; :meth:`validate` enforces it on demand, and
generators produce feasible instances by construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import InfeasibleInstanceError, InvalidInstanceError
from repro.types import Edge, ElementId, SetId


class SetCoverInstance:
    """An immutable set-cover instance over universe ``range(n)``.

    Parameters
    ----------
    n:
        Universe size; elements are ``0 .. n-1``.
    sets:
        Iterable of element collections, one per set, indexed ``0 .. m-1``
        in iteration order.
    name:
        Optional human-readable label used in experiment output.
    """

    def __init__(
        self,
        n: int,
        sets: Iterable[Iterable[ElementId]],
        name: str = "",
    ) -> None:
        if n <= 0:
            raise InvalidInstanceError(f"universe size must be positive, got {n}")
        self._n = n
        self._sets: List[FrozenSet[ElementId]] = []
        for set_id, members in enumerate(sets):
            frozen = frozenset(int(u) for u in members)
            for u in frozen:
                if not 0 <= u < n:
                    raise InvalidInstanceError(
                        f"set {set_id} contains element {u} outside universe "
                        f"range(0, {n})"
                    )
            self._sets.append(frozen)
        if not self._sets:
            raise InvalidInstanceError("instance must contain at least one set")
        self.name = name
        self._element_degrees: Optional[List[int]] = None
        self._num_edges: Optional[int] = None

    # -- basic shape -----------------------------------------------------

    @property
    def n(self) -> int:
        """Universe size."""
        return self._n

    @property
    def m(self) -> int:
        """Number of sets."""
        return len(self._sets)

    @property
    def num_edges(self) -> int:
        """Total number of (set, element) incidences — the stream length N."""
        if self._num_edges is None:
            self._num_edges = sum(len(s) for s in self._sets)
        return self._num_edges

    def set_members(self, set_id: SetId) -> FrozenSet[ElementId]:
        """The elements of set ``set_id``."""
        try:
            return self._sets[set_id]
        except IndexError:
            raise InvalidInstanceError(
                f"set id {set_id} out of range(0, {self.m})"
            ) from None

    def set_size(self, set_id: SetId) -> int:
        """``len`` of set ``set_id``."""
        return len(self.set_members(set_id))

    def sets(self) -> Sequence[FrozenSet[ElementId]]:
        """All sets, indexed by set id."""
        return tuple(self._sets)

    def contains(self, set_id: SetId, element: ElementId) -> bool:
        """Whether element ``element`` is in set ``set_id``."""
        return element in self.set_members(set_id)

    # -- derived structure -------------------------------------------------

    def edges(self) -> Iterator[Edge]:
        """Iterate all incidence edges, grouped by set, elements ascending.

        This is the canonical (deterministic) edge enumeration; arrival
        orders are applied on top of it by :mod:`repro.streaming.orders`.
        """
        for set_id, members in enumerate(self._sets):
            for element in sorted(members):
                yield Edge(set_id, element)

    def element_degrees(self) -> Sequence[int]:
        """Degree (number of containing sets) of each element, by id."""
        if self._element_degrees is None:
            degrees = [0] * self._n
            for members in self._sets:
                for u in members:
                    degrees[u] += 1
            self._element_degrees = degrees
        return tuple(self._element_degrees)

    def element_degree(self, element: ElementId) -> int:
        """Degree of a single element."""
        if not 0 <= element < self._n:
            raise InvalidInstanceError(
                f"element {element} out of range(0, {self._n})"
            )
        return self.element_degrees()[element]

    def covering_sets(self, element: ElementId) -> FrozenSet[SetId]:
        """Ids of the sets containing ``element`` (computed on demand)."""
        if not 0 <= element < self._n:
            raise InvalidInstanceError(
                f"element {element} out of range(0, {self._n})"
            )
        return frozenset(
            set_id for set_id, members in enumerate(self._sets) if element in members
        )

    # -- feasibility and cover checking -----------------------------------

    def validate(self) -> None:
        """Raise :class:`InfeasibleInstanceError` if some element is uncovered.

        The paper assumes feasibility throughout (Section 2); call this
        after constructing instances from untrusted input.
        """
        covered: Set[ElementId] = set()
        for members in self._sets:
            covered.update(members)
        missing = [u for u in range(self._n) if u not in covered]
        if missing:
            preview = ", ".join(str(u) for u in missing[:5])
            raise InfeasibleInstanceError(
                f"{len(missing)} element(s) belong to no set (e.g. {preview})"
            )

    def is_feasible(self) -> bool:
        """``True`` iff every element is contained in at least one set."""
        try:
            self.validate()
        except InfeasibleInstanceError:
            return False
        return True

    def coverage_of(self, set_ids: Iterable[SetId]) -> Set[ElementId]:
        """Union of the given sets' members."""
        covered: Set[ElementId] = set()
        for set_id in set_ids:
            covered.update(self.set_members(set_id))
        return covered

    def is_cover(self, set_ids: Iterable[SetId]) -> bool:
        """``True`` iff the given sets jointly cover the whole universe."""
        return len(self.coverage_of(set_ids)) == self._n

    def uncovered_by(self, set_ids: Iterable[SetId]) -> Set[ElementId]:
        """Elements *not* covered by the given sets."""
        covered = self.coverage_of(set_ids)
        return {u for u in range(self._n) if u not in covered}

    def verify_certificate(self, certificate: Mapping[ElementId, SetId]) -> None:
        """Check a cover certificate ``element -> covering set``.

        Raises :class:`InvalidInstanceError` unless every universe
        element is assigned a set that actually contains it.
        """
        from repro.errors import InvalidCoverError

        for u in range(self._n):
            if u not in certificate:
                raise InvalidCoverError(f"element {u} has no certificate entry")
            s = certificate[u]
            if not self.contains(s, u):
                raise InvalidCoverError(
                    f"certificate maps element {u} to set {s}, which does not "
                    "contain it"
                )

    # -- restriction / derived instances -----------------------------------

    def restrict_to_sets(self, set_ids: Sequence[SetId], name: str = "") -> "SetCoverInstance":
        """New instance keeping only the given sets (same universe)."""
        return SetCoverInstance(
            self._n,
            (self.set_members(s) for s in set_ids),
            name=name or f"{self.name}|restricted",
        )

    def with_extra_sets(
        self, extra: Iterable[Iterable[ElementId]], name: str = ""
    ) -> "SetCoverInstance":
        """New instance with ``extra`` sets appended after the existing ones."""
        combined: List[Iterable[ElementId]] = list(self._sets)
        combined.extend(extra)
        return SetCoverInstance(self._n, combined, name=name or f"{self.name}+extra")

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetCoverInstance):
            return NotImplemented
        return self._n == other._n and self._sets == other._sets

    def __hash__(self) -> int:
        return hash((self._n, tuple(self._sets)))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SetCoverInstance(n={self._n}, m={self.m}, "
            f"edges={self.num_edges}{label})"
        )


def instance_from_edges(
    n: int, m: int, edges: Iterable[Tuple[SetId, ElementId]], name: str = ""
) -> SetCoverInstance:
    """Build an instance of shape ``(n, m)`` from an edge list.

    Sets that receive no edges become empty sets; they are legal (an
    algorithm simply never sees them in the stream) but the instance
    must still be feasible overall if you intend to run cover checks.
    """
    members: Dict[SetId, Set[ElementId]] = {s: set() for s in range(m)}
    for set_id, element in edges:
        if not 0 <= set_id < m:
            raise InvalidInstanceError(f"edge references set {set_id} >= m={m}")
        members[set_id].add(element)
    return SetCoverInstance(n, (members[s] for s in range(m)), name=name)
