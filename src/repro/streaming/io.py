"""Plain-text persistence for instances and streams.

The format is deliberately simple and diff-friendly::

    # optional comment lines
    setcover <n> <m>
    <set_id> <element>
    <set_id> <element>
    ...

One edge per line; sets with no edges are empty sets.  This is the
interchange format used by the examples and accepted by the CLI.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Tuple, Union

from repro.errors import InvalidInstanceError
from repro.streaming.instance import SetCoverInstance, instance_from_edges
from repro.types import Edge

PathLike = Union[str, Path]

_HEADER = "setcover"


def dump_instance(instance: SetCoverInstance, target: Union[PathLike, TextIO]) -> None:
    """Write ``instance`` in the text format to a path or open text file."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(instance, handle)
    else:
        _write(instance, target)


def _write(instance: SetCoverInstance, handle: TextIO) -> None:
    if instance.name:
        handle.write(f"# {instance.name}\n")
    handle.write(f"{_HEADER} {instance.n} {instance.m}\n")
    for edge in instance.edges():
        handle.write(f"{edge.set_id} {edge.element}\n")


def load_instance(source: Union[PathLike, TextIO]) -> SetCoverInstance:
    """Read an instance written by :func:`dump_instance`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


def _read(handle: TextIO) -> SetCoverInstance:
    name = ""
    header: Tuple[int, int] = (0, 0)
    edges: List[Tuple[int, int]] = []
    saw_header = False
    for line_no, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if not saw_header and not name:
                name = line.lstrip("#").strip()
            continue
        parts = line.split()
        if not saw_header:
            if parts[0] != _HEADER or len(parts) != 3:
                raise InvalidInstanceError(
                    f"line {line_no}: expected '{_HEADER} <n> <m>' header, got "
                    f"{line!r}"
                )
            try:
                header = (int(parts[1]), int(parts[2]))
            except ValueError:
                raise InvalidInstanceError(
                    f"line {line_no}: non-integer header fields in {line!r}"
                ) from None
            saw_header = True
            continue
        if len(parts) != 2:
            raise InvalidInstanceError(
                f"line {line_no}: expected '<set_id> <element>', got {line!r}"
            )
        try:
            edges.append((int(parts[0]), int(parts[1])))
        except ValueError:
            raise InvalidInstanceError(
                f"line {line_no}: non-integer edge fields in {line!r}"
            ) from None
    if not saw_header:
        raise InvalidInstanceError("missing 'setcover <n> <m>' header")
    n, m = header
    return instance_from_edges(n, m, edges, name=name)


def dumps_instance(instance: SetCoverInstance) -> str:
    """Serialise ``instance`` to a string."""
    buffer = io.StringIO()
    _write(instance, buffer)
    return buffer.getvalue()


def loads_instance(text: str) -> SetCoverInstance:
    """Parse an instance from a string produced by :func:`dumps_instance`."""
    return _read(io.StringIO(text))


def dump_stream(edges: Iterable[Edge], target: Union[PathLike, TextIO]) -> None:
    """Write an ordered edge sequence, one ``set element`` pair per line."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            for edge in edges:
                handle.write(f"{edge.set_id} {edge.element}\n")
    else:
        for edge in edges:
            target.write(f"{edge.set_id} {edge.element}\n")


def load_stream(source: Union[PathLike, TextIO]) -> List[Edge]:
    """Read an ordered edge sequence written by :func:`dump_stream`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_stream(handle)
    return _read_stream(source)


def _read_stream(handle: TextIO) -> List[Edge]:
    edges: List[Edge] = []
    for line_no, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise InvalidInstanceError(
                f"line {line_no}: expected '<set_id> <element>', got {line!r}"
            )
        edges.append(Edge(int(parts[0]), int(parts[1])))
    return edges
