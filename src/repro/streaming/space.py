"""Word-level space accounting for streaming algorithms.

Streaming space bounds in the paper are stated in machine *words* (each
word holds an id or counter of O(log(mn)) bits).  To reproduce the
Table-1 space rows empirically we charge every piece of live algorithm
state to a :class:`SpaceMeter` and report the *peak* word count reached
during the pass.

Two usage styles are supported:

1. **Ledger style** (preferred): the algorithm registers named
   components with :meth:`SpaceMeter.set_component`, typically sized as
   ``len`` of a dict/set it maintains.  The meter sums components and
   tracks the peak of the sum.
2. **Delta style**: :meth:`SpaceMeter.charge` / :meth:`SpaceMeter.release`
   adjust an anonymous component directly.

A :class:`SpaceBudget` can optionally be attached to turn the meter into
an enforcer that raises :class:`~repro.errors.SpaceBudgetExceededError`
the moment the peak would cross the budget — used by tests that assert
an algorithm genuinely fits in its advertised space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SpaceBudgetExceededError


@dataclass
class SpaceBudget:
    """A hard cap, in words, that a :class:`SpaceMeter` may enforce."""

    words: int
    context: str = ""

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ValueError(f"space budget must be positive, got {self.words}")


@dataclass
class SpaceReport:
    """Immutable snapshot of a meter, suitable for experiment records."""

    peak_words: int
    final_words: int
    components_at_peak: Dict[str, int] = field(default_factory=dict)
    component_peaks: Dict[str, int] = field(default_factory=dict)

    def dominant_component(self) -> Optional[str]:
        """Name of the largest component at the peak, or ``None`` if empty."""
        if not self.components_at_peak:
            return None
        return max(self.components_at_peak, key=self.components_at_peak.get)

    def peak_of(self, name: str) -> int:
        """Highest size component ``name`` ever reached (0 if never set)."""
        return self.component_peaks.get(name, 0)


class SpaceMeter:
    """Tracks current and peak word usage of a streaming algorithm.

    The meter deliberately does *not* use ``sys.getsizeof``: Python
    object overhead would drown the asymptotics the paper states.  One
    dict entry mapping an id to a counter costs a constant number of
    words; we charge exactly the number of words the idealised RAM
    algorithm would use, which is what the theorems count.
    """

    def __init__(self, budget: Optional[SpaceBudget] = None) -> None:
        self._components: Dict[str, int] = {}
        self._anonymous = 0
        self._peak = 0
        self._components_at_peak: Dict[str, int] = {}
        self._component_peaks: Dict[str, int] = {}
        self.budget = budget

    # -- ledger style ---------------------------------------------------

    def set_component(self, name: str, words: int) -> None:
        """Set the current size of component ``name`` to ``words``."""
        if words < 0:
            raise ValueError(f"component size must be >= 0, got {words} for {name!r}")
        self._components[name] = words
        if words > self._component_peaks.get(name, 0):
            self._component_peaks[name] = words
        self._after_update()

    def add_to_component(self, name: str, delta: int) -> None:
        """Adjust component ``name`` by ``delta`` words (creating it at 0)."""
        new = self._components.get(name, 0) + delta
        if new < 0:
            raise ValueError(
                f"component {name!r} would become negative ({new} words)"
            )
        self._components[name] = new
        if new > self._component_peaks.get(name, 0):
            self._component_peaks[name] = new
        self._after_update()

    def component(self, name: str) -> int:
        """Current size in words of component ``name`` (0 if absent)."""
        return self._components.get(name, 0)

    # -- delta style ----------------------------------------------------

    def charge(self, words: int) -> None:
        """Charge ``words`` words of anonymous state."""
        if words < 0:
            raise ValueError("use release() to free space")
        self._anonymous += words
        self._after_update()

    def release(self, words: int) -> None:
        """Release ``words`` words of anonymous state."""
        if words < 0:
            raise ValueError("use charge() to add space")
        if words > self._anonymous:
            raise ValueError(
                f"releasing {words} words but only {self._anonymous} anonymous "
                "words are charged"
            )
        self._anonymous -= words
        self._after_update()

    # -- queries ---------------------------------------------------------

    @property
    def current_words(self) -> int:
        """Total words currently charged across all components."""
        return self._anonymous + sum(self._components.values())

    @property
    def peak_words(self) -> int:
        """Highest value :attr:`current_words` has reached."""
        return self._peak

    def report(self) -> SpaceReport:
        """Snapshot of peak/final usage and the per-component breakdown."""
        return SpaceReport(
            peak_words=self._peak,
            final_words=self.current_words,
            components_at_peak=dict(self._components_at_peak),
            component_peaks=dict(self._component_peaks),
        )

    def reset(self) -> None:
        """Clear all charges and the recorded peak."""
        self._components.clear()
        self._anonymous = 0
        self._peak = 0
        self._components_at_peak = {}
        self._component_peaks = {}

    # -- internals --------------------------------------------------------

    def _after_update(self) -> None:
        current = self.current_words
        if current > self._peak:
            self._peak = current
            self._components_at_peak = dict(self._components)
            if self._anonymous:
                self._components_at_peak["<anonymous>"] = self._anonymous
        if self.budget is not None and current > self.budget.words:
            raise SpaceBudgetExceededError(
                used=current, budget=self.budget.words, context=self.budget.context
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaceMeter(current={self.current_words}, peak={self._peak}, "
            f"components={len(self._components)})"
        )


def words_for_mapping(entries: int, words_per_entry: int = 2) -> int:
    """Words for a mapping with ``entries`` key/value entries.

    A key -> value entry of id-sized integers costs two words in the
    idealised model; pass ``words_per_entry`` for richer values.
    """
    if entries < 0:
        raise ValueError("entries must be >= 0")
    return entries * words_per_entry


def words_for_set(entries: int) -> int:
    """Words for storing a set of ``entries`` ids (one word each)."""
    if entries < 0:
        raise ValueError("entries must be >= 0")
    return entries
