"""Word-level space accounting for streaming algorithms.

Streaming space bounds in the paper are stated in machine *words* (each
word holds an id or counter of O(log(mn)) bits).  To reproduce the
Table-1 space rows empirically we charge every piece of live algorithm
state to a :class:`SpaceMeter` and report the *peak* word count reached
during the pass.

Three usage styles are supported:

1. **Charged containers** (preferred on hot paths):
   :class:`ChargedDict` / :class:`ChargedSet` behave exactly like
   ``dict`` / ``set`` but charge their meter component whenever their
   size changes, so algorithms never hand-call the meter per edge.
2. **Ledger style**: the algorithm registers named components with
   :meth:`SpaceMeter.set_component`, typically sized as ``len`` of a
   dict/set it maintains.  The meter sums components and tracks the
   peak of the sum.
3. **Delta style**: :meth:`SpaceMeter.charge` / :meth:`SpaceMeter.release`
   adjust an anonymous component directly.

Every meter update is O(1) amortized: the running total is maintained
incrementally, and the per-component breakdown at the peak is recorded
*lazily* — while usage grows monotonically the meter only remembers that
"the peak is the current state", and the actual dict copy is taken at
most once per departure from a peak (e.g. a phase boundary releasing a
buffer), not on every growth step.

A :class:`SpaceBudget` can optionally be attached to turn the meter into
an enforcer that raises :class:`~repro.errors.SpaceBudgetExceededError`
the moment the peak would cross the budget — used by tests that assert
an algorithm genuinely fits in its advertised space.

Budget discipline — **apply, then raise**: the offending update is
recorded *before* the budget error fires, so a tripped meter's report
shows the true high-water mark that crossed the cap (``error.used ==
meter.current_words``), not the last under-budget state.  This is a
deliberate shared contract with
:meth:`repro.distributed.comm.CommMeter.record` — both meters are
forensic instruments first and enforcers second — and is pinned by the
hypothesis property in ``tests/test_meter_contract.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import SpaceBudgetExceededError


@dataclass
class SpaceBudget:
    """A hard cap, in words, that a :class:`SpaceMeter` may enforce."""

    words: int
    context: str = ""

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ValueError(f"space budget must be positive, got {self.words}")


@dataclass
class SpaceReport:
    """Immutable snapshot of a meter, suitable for experiment records."""

    peak_words: int
    final_words: int
    components_at_peak: Dict[str, int] = field(default_factory=dict)
    component_peaks: Dict[str, int] = field(default_factory=dict)

    def dominant_component(self) -> Optional[str]:
        """Name of the largest component at the peak, or ``None`` if empty.

        Ties break to the lexicographically *smallest* name, not dict
        insertion order — two runs that register equal-sized components
        in different orders must report the same dominant component.
        The same tie-break governs
        :meth:`~repro.distributed.comm.CommReport.busiest_link`.
        """
        if not self.components_at_peak:
            return None
        return min(
            self.components_at_peak.items(), key=lambda kv: (-kv[1], kv[0])
        )[0]

    def peak_of(self, name: str) -> int:
        """Highest size component ``name`` ever reached (0 if never set)."""
        return self.component_peaks.get(name, 0)


class SpaceMeter:
    """Tracks current and peak word usage of a streaming algorithm.

    The meter deliberately does *not* use ``sys.getsizeof``: Python
    object overhead would drown the asymptotics the paper states.  One
    dict entry mapping an id to a counter costs a constant number of
    words; we charge exactly the number of words the idealised RAM
    algorithm would use, which is what the theorems count.

    All updates are O(1): the component sum is maintained as a running
    total, and the breakdown-at-peak copy is deferred until the state
    actually moves off the peak (or a report is requested).
    """

    __slots__ = (
        "_components",
        "_anonymous",
        "_current",
        "_peak",
        "_components_at_peak",
        "_peak_is_current",
        "_component_peaks",
        "budget",
    )

    def __init__(self, budget: Optional[SpaceBudget] = None) -> None:
        self._components: Dict[str, int] = {}
        self._anonymous = 0
        self._current = 0
        self._peak = 0
        self._components_at_peak: Dict[str, int] = {}
        # True while the recorded peak coincides with the *current* state,
        # meaning the breakdown copy can still be deferred.
        self._peak_is_current = False
        self._component_peaks: Dict[str, int] = {}
        self.budget = budget

    # -- ledger style ---------------------------------------------------

    def set_component(self, name: str, words: int) -> None:
        """Set the current size of component ``name`` to ``words``."""
        if words < 0:
            raise ValueError(f"component size must be >= 0, got {words} for {name!r}")
        components = self._components
        old = components.get(name, 0)
        if words == old:
            if name not in components:
                # Creating an (empty) entry changes the breakdown without
                # changing the total: settle any deferred peak copy first.
                if self._peak_is_current:
                    self._materialize_peak()
                components[name] = words
            self._check_budget()
            return
        current = self._current + words - old
        if current <= self._peak and self._peak_is_current:
            self._materialize_peak()
        components[name] = words
        self._current = current
        if words > self._component_peaks.get(name, 0):
            self._component_peaks[name] = words
        if current > self._peak:
            self._peak = current
            self._peak_is_current = True
        budget = self.budget
        if budget is not None and current > budget.words:
            raise SpaceBudgetExceededError(
                used=current, budget=budget.words, context=budget.context
            )

    def add_to_component(self, name: str, delta: int) -> None:
        """Adjust component ``name`` by ``delta`` words (creating it at 0)."""
        new = self._components.get(name, 0) + delta
        if new < 0:
            raise ValueError(
                f"component {name!r} would become negative ({new} words)"
            )
        self.set_component(name, new)

    def component(self, name: str) -> int:
        """Current size in words of component ``name`` (0 if absent)."""
        return self._components.get(name, 0)

    # -- delta style ----------------------------------------------------

    def charge(self, words: int) -> None:
        """Charge ``words`` words of anonymous state."""
        if words < 0:
            raise ValueError("use release() to free space")
        self._shift_anonymous(words)

    def release(self, words: int) -> None:
        """Release ``words`` words of anonymous state."""
        if words < 0:
            raise ValueError("use charge() to add space")
        if words > self._anonymous:
            raise ValueError(
                f"releasing {words} words but only {self._anonymous} anonymous "
                "words are charged"
            )
        self._shift_anonymous(-words)

    def _shift_anonymous(self, delta: int) -> None:
        if delta == 0:
            self._check_budget()
            return
        current = self._current + delta
        if current <= self._peak and self._peak_is_current:
            self._materialize_peak()
        self._anonymous += delta
        self._current = current
        if current > self._peak:
            self._peak = current
            self._peak_is_current = True
        budget = self.budget
        if budget is not None and current > budget.words:
            raise SpaceBudgetExceededError(
                used=current, budget=budget.words, context=budget.context
            )

    # -- queries ---------------------------------------------------------

    @property
    def current_words(self) -> int:
        """Total words currently charged across all components."""
        return self._current

    @property
    def peak_words(self) -> int:
        """Highest value :attr:`current_words` has reached."""
        return self._peak

    def report(self) -> SpaceReport:
        """Snapshot of peak/final usage and the per-component breakdown."""
        if self._peak_is_current:
            self._materialize_peak()
        return SpaceReport(
            peak_words=self._peak,
            final_words=self._current,
            components_at_peak=dict(self._components_at_peak),
            component_peaks=dict(self._component_peaks),
        )

    def reset(self) -> None:
        """Clear all charges and the recorded peak."""
        self._components.clear()
        self._anonymous = 0
        self._current = 0
        self._peak = 0
        self._components_at_peak = {}
        self._peak_is_current = False
        self._component_peaks = {}

    # -- internals --------------------------------------------------------

    def _materialize_peak(self) -> None:
        """Take the deferred breakdown copy for the recorded peak."""
        snapshot = dict(self._components)
        if self._anonymous:
            snapshot["<anonymous>"] = self._anonymous
        self._components_at_peak = snapshot
        self._peak_is_current = False

    def _check_budget(self) -> None:
        budget = self.budget
        if budget is not None and self._current > budget.words:
            raise SpaceBudgetExceededError(
                used=self._current, budget=budget.words, context=budget.context
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaceMeter(current={self._current}, peak={self._peak}, "
            f"components={len(self._components)})"
        )


class ChargedSet(set):
    """A ``set`` that charges a meter component whenever its size changes.

    Algorithms use this instead of hand-calling
    ``meter.set_component(name, words_for_set(len(s)))`` after every
    mutation: membership tests and iteration run at native ``set`` speed
    (no Python-level indirection), and only genuine size changes touch
    the meter — each an O(1) update.

    Parameters
    ----------
    meter, component:
        The meter and component name charged on size change.
    words_per_entry:
        Words charged per element (1 for a set of ids).
    iterable:
        Initial contents.
    charge_initial:
        When true (default) the component is charged immediately at
        construction, even if empty — matching algorithms that register
        a component up front.  When false, the component is only created
        by the first mutation, matching lazily-registered components.
    """

    def __init__(
        self,
        meter: SpaceMeter,
        component: str,
        words_per_entry: int = 1,
        iterable: Iterable = (),
        charge_initial: bool = True,
    ) -> None:
        super().__init__(iterable)
        self._meter = meter
        self._component = component
        self._words_per_entry = words_per_entry
        if charge_initial or self:
            self._recharge()

    def _recharge(self) -> None:
        self._meter.set_component(
            self._component, len(self) * self._words_per_entry
        )

    def add(self, item) -> None:
        if item not in self:
            set.add(self, item)
            self._recharge()

    def discard(self, item) -> None:
        if item in self:
            set.discard(self, item)
            self._recharge()

    def remove(self, item) -> None:
        set.remove(self, item)
        self._recharge()

    def pop(self):
        item = set.pop(self)
        self._recharge()
        return item

    def clear(self) -> None:
        if self:
            set.clear(self)
            self._recharge()

    def update(self, *iterables) -> None:
        before = len(self)
        set.update(self, *iterables)
        if len(self) != before:
            self._recharge()


class ChargedDict(dict):
    """A ``dict`` that charges a meter component whenever its size changes.

    Lookups (``d[k]``, ``k in d``, ``d.get``) run at native ``dict``
    speed; insertions and deletions charge ``words_per_entry`` words per
    entry (2 for an id -> counter mapping) with an O(1) meter update.
    See :class:`ChargedSet` for the parameter meanings.
    """

    def __init__(
        self,
        meter: SpaceMeter,
        component: str,
        words_per_entry: int = 2,
        mapping: Union[Mapping, Iterable[Tuple]] = (),
        charge_initial: bool = True,
    ) -> None:
        super().__init__(mapping)
        self._meter = meter
        self._component = component
        self._words_per_entry = words_per_entry
        if charge_initial or self:
            self._recharge()

    def _recharge(self) -> None:
        self._meter.set_component(
            self._component, len(self) * self._words_per_entry
        )

    def __setitem__(self, key, value) -> None:
        grew = key not in self
        dict.__setitem__(self, key, value)
        if grew:
            self._recharge()

    def __delitem__(self, key) -> None:
        dict.__delitem__(self, key)
        self._recharge()

    def setdefault(self, key, default=None):
        if key in self:
            return dict.__getitem__(self, key)
        dict.__setitem__(self, key, default)
        self._recharge()
        return default

    def pop(self, key, *default):
        had = key in self
        value = dict.pop(self, key, *default)
        if had:
            self._recharge()
        return value

    def popitem(self):
        item = dict.popitem(self)
        self._recharge()
        return item

    def clear(self) -> None:
        if self:
            dict.clear(self)
            self._recharge()

    def update(self, *args, **kwargs) -> None:
        before = len(self)
        dict.update(self, *args, **kwargs)
        if len(self) != before:
            self._recharge()


def words_for_mapping(entries: int, words_per_entry: int = 2) -> int:
    """Words for a mapping with ``entries`` key/value entries.

    A key -> value entry of id-sized integers costs two words in the
    idealised model; pass ``words_per_entry`` for richer values.
    """
    if entries < 0:
        raise ValueError("entries must be >= 0")
    return entries * words_per_entry


def words_for_set(entries: int) -> int:
    """Words for storing a set of ``entries`` ids (one word each)."""
    if entries < 0:
        raise ValueError("entries must be >= 0")
    return entries
