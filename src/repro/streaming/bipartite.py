"""Bipartite incidence-graph view of set-cover instances (paper Section 2).

The paper represents an instance ``(S, U)`` as a bipartite graph
``G = (S, U, E)`` with ``(S_i, u) ∈ E`` iff ``u ∈ S_i``; a cover is a
subset of the left side whose neighbourhood is the whole right side.
This module provides conversions in both directions plus the
Dominating-Set encoding (the ``m = n`` special case studied by
Khanna–Konrad [19] that motivates the KK-algorithm).

``networkx`` is used only here and only optionally — the rest of the
library has no graph dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import InvalidInstanceError
from repro.streaming.instance import SetCoverInstance
from repro.types import ElementId, SetId


def to_biadjacency(instance: SetCoverInstance) -> List[Set[ElementId]]:
    """Adjacency of the left (set) side: ``adj[s]`` = elements of set s."""
    return [set(instance.set_members(s)) for s in range(instance.m)]


def element_adjacency(instance: SetCoverInstance) -> List[Set[SetId]]:
    """Adjacency of the right (element) side: ``adj[u]`` = sets containing u."""
    adj: List[Set[SetId]] = [set() for _ in range(instance.n)]
    for s in range(instance.m):
        for u in instance.set_members(s):
            adj[u].add(s)
    return adj


def to_networkx(instance: SetCoverInstance):
    """Build a ``networkx`` bipartite graph of the instance.

    Left nodes are ``("S", set_id)``, right nodes ``("U", element)``;
    node attribute ``bipartite`` is 0 for sets and 1 for elements.
    """
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from((("S", s) for s in range(instance.m)), bipartite=0)
    graph.add_nodes_from((("U", u) for u in range(instance.n)), bipartite=1)
    graph.add_edges_from(
        (("S", s), ("U", u))
        for s in range(instance.m)
        for u in instance.set_members(s)
    )
    return graph


def from_networkx(graph) -> SetCoverInstance:
    """Rebuild an instance from a graph produced by :func:`to_networkx`."""
    set_ids = sorted(node[1] for node in graph.nodes if node[0] == "S")
    element_ids = sorted(node[1] for node in graph.nodes if node[0] == "U")
    if set_ids != list(range(len(set_ids))):
        raise InvalidInstanceError("set ids in graph are not dense 0..m-1")
    if element_ids != list(range(len(element_ids))):
        raise InvalidInstanceError("element ids in graph are not dense 0..n-1")
    members: List[Set[ElementId]] = [set() for _ in set_ids]
    for left, right in graph.edges:
        if left[0] == "U":
            left, right = right, left
        if left[0] != "S" or right[0] != "U":
            raise InvalidInstanceError(f"non-bipartite edge {(left, right)}")
        members[left[1]].add(right[1])
    return SetCoverInstance(len(element_ids), members, name="from-networkx")


def dominating_set_instance(
    adjacency: Sequence[Iterable[int]], name: str = "dominating-set"
) -> SetCoverInstance:
    """Encode Dominating Set on a graph as edge-arrival Set Cover.

    Vertex ``v``'s set is its closed neighbourhood ``N[v] = {v} ∪ N(v)``;
    a dominating set of the graph is exactly a set cover of this
    instance, giving the ``m = n`` special case of [19].

    Parameters
    ----------
    adjacency:
        ``adjacency[v]`` lists the neighbours of vertex ``v``; the graph
        is taken as undirected (edges are symmetrised).
    """
    n = len(adjacency)
    if n == 0:
        raise InvalidInstanceError("graph must have at least one vertex")
    closed: List[Set[int]] = [{v} for v in range(n)]
    for v, neighbours in enumerate(adjacency):
        for w in neighbours:
            if not 0 <= w < n:
                raise InvalidInstanceError(
                    f"vertex {v} lists neighbour {w} outside range(0, {n})"
                )
            if w == v:
                continue
            closed[v].add(w)
            closed[w].add(v)
    return SetCoverInstance(n, closed, name=name)


def degree_histogram(instance: SetCoverInstance) -> Dict[int, int]:
    """Histogram ``degree -> count`` over element degrees.

    High-degree elements (degree ≥ ~m/√n) are exactly the ones epoch 0
    of Algorithm 1 detects and marks; this helper supports tests and
    diagnostics around that mechanism.
    """
    hist: Dict[int, int] = {}
    for degree in instance.element_degrees():
        hist[degree] = hist.get(degree, 0) + 1
    return hist


def set_size_histogram(instance: SetCoverInstance) -> Dict[int, int]:
    """Histogram ``size -> count`` over set sizes."""
    hist: Dict[int, int] = {}
    for s in range(instance.m):
        size = instance.set_size(s)
        hist[size] = hist.get(size, 0) + 1
    return hist
