"""One-pass edge streams over a set-cover instance.

An :class:`EdgeStream` couples an instance with an arrival order and
enforces the single-pass discipline: once consumed, a stream refuses to
be iterated again (algorithms that accidentally take two passes fail
loudly in tests instead of silently cheating).

The ordered edge sequence is frozen once into a :class:`FrozenEdges`
buffer — an immutable tuple plus a lazily-built numpy ``(N,)`` column
pair — and *shared* across every view of the ordering: creating a fresh
one-pass view is O(1), and batch consumers (see :meth:`EdgeStream.iter_chunks`
and :class:`StreamReader`) slice the shared buffer instead of stepping a
generator one edge at a time.

Use :func:`stream_of` for the common case, or :class:`ReplayableStream`
in experiment harnesses where several algorithms must see the *same*
ordered stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import InvalidStreamError, StreamExhaustedError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import ArrivalOrder, CanonicalOrder
from repro.types import Edge

EdgesLike = Union["FrozenEdges", Sequence[Edge]]


class FrozenEdges:
    """An immutable edge ordering shared by every view of a stream.

    Holds the edges as a tuple (the canonical Python representation) and
    builds, on first request, a pair of numpy ``int64`` columns
    ``(set_ids, elements)`` for vectorized batch processing.  Both
    representations are built at most once and shared — wrapping an
    existing :class:`FrozenEdges` or passing the same instance to many
    streams never copies.
    """

    __slots__ = ("_edges", "_set_ids", "_elements")

    def __init__(self, edges: EdgesLike) -> None:
        if isinstance(edges, FrozenEdges):
            self._edges = edges._edges
            self._set_ids = edges._set_ids
            self._elements = edges._elements
            return
        self._edges: Tuple[Edge, ...] = (
            edges if isinstance(edges, tuple) else tuple(edges)
        )
        self._set_ids: Optional[np.ndarray] = None
        self._elements: Optional[np.ndarray] = None

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """The full ordered edge tuple (shared, never copied)."""
        return self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __getitem__(self, index):
        return self._edges[index]

    def columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy ``(set_ids, elements)`` columns of the ordering.

        Built once on first call (O(N)), then shared by every stream
        view; slices of the returned arrays are numpy views, so chunked
        consumers never copy edge data.
        """
        if self._set_ids is None:
            n = len(self._edges)
            flat = np.fromiter(
                (value for edge in self._edges for value in edge),
                dtype=np.int64,
                count=2 * n,
            )
            pairs = flat.reshape(n, 2) if n else flat.reshape(0, 2)
            # Assign _elements before _set_ids: concurrent callers gate on
            # _set_ids, so both columns must be ready once it is visible.
            self._elements = np.ascontiguousarray(pairs[:, 1])
            self._set_ids = np.ascontiguousarray(pairs[:, 0])
        return self._set_ids, self._elements


@dataclass(frozen=True)
class StreamCheckpoint:
    """A verifiable position in a one-pass stream.

    Captures both the reader position and the shape of the underlying
    buffer at checkpoint time, so restoring onto a *different* buffer —
    truncated, extended, or one whose declared length disagrees with the
    edges it actually holds — is detected and rejected instead of
    silently misaligning the cursor.
    """

    position: int
    buffer_length: int
    declared_length: int

    def validate_against(self, stream: "EdgeStream") -> None:
        """Raise :class:`InvalidStreamError` unless ``stream`` matches."""
        actual = stream.actual_length
        if self.buffer_length != actual:
            raise InvalidStreamError(
                f"checkpoint taken on a buffer of {self.buffer_length} edges "
                f"cannot be restored onto one holding {actual} (truncated or "
                "extended stream)"
            )
        if stream.length != actual:
            raise InvalidStreamError(
                f"stream declares N={stream.length} but its buffer holds "
                f"{actual} edges; refusing to restore onto a length-lying "
                "stream"
            )
        if self.declared_length != stream.length:
            raise InvalidStreamError(
                f"checkpoint recorded declared length {self.declared_length} "
                f"but stream declares {stream.length}"
            )
        if not 0 <= self.position <= actual:
            raise InvalidStreamError(
                f"checkpoint position {self.position} outside the buffer's "
                f"range(0, {actual + 1})"
            )


class StreamReader:
    """Sequential batched cursor over a one-pass :class:`EdgeStream`.

    Obtained from :meth:`EdgeStream.reader`; the stream is marked
    consumed at that point, so the reader is the only way to advance it.
    ``take(k)`` returns the next ``k`` edges as a tuple slice of the
    shared buffer (no per-edge generator step), and
    :meth:`take_columns` returns the matching numpy views for
    vectorized processing.
    """

    __slots__ = ("_stream", "_frozen")

    def __init__(self, stream: "EdgeStream") -> None:
        self._stream = stream
        self._frozen = stream._frozen

    @property
    def position(self) -> int:
        """Number of edges consumed so far."""
        return self._stream._position

    @property
    def remaining(self) -> int:
        """Number of edges not yet consumed."""
        return len(self._frozen) - self._stream._position

    def checkpoint(self) -> StreamCheckpoint:
        """Snapshot the current position for a later verified restore."""
        stream = self._stream
        return StreamCheckpoint(
            position=stream._position,
            buffer_length=len(self._frozen),
            declared_length=stream.length,
        )

    def take(self, k: int) -> Tuple[Edge, ...]:
        """Consume and return up to ``k`` edges.

        The returned chunk may be shorter than ``k`` at end of stream
        *or* when the stream has a pending checkpoint (takes never cross
        one); callers consuming a fixed quota must loop until the quota
        is filled or the chunk comes back empty.
        """
        if k < 0:
            raise ValueError(f"cannot take {k} edges")
        stream = self._stream
        start, stop = stream._take_bounds(k)
        stream._position = stop
        return self._frozen.edges[start:stop]

    def take_rest(self) -> Tuple[Edge, ...]:
        """Consume and return every remaining edge (up to a checkpoint)."""
        return self.take(len(self._frozen) - self._stream._position)

    def take_columns(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Consume up to ``k`` edges, returned as numpy column views.

        Subject to the same checkpoint clamping as :meth:`take`.
        """
        if k < 0:
            raise ValueError(f"cannot take {k} edges")
        set_ids, elements = self._frozen.columns()
        stream = self._stream
        start, stop = stream._take_bounds(k)
        stream._position = stop
        return set_ids[start:stop], elements[start:stop]

    def take_rest_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """Consume every remaining edge as numpy column views."""
        return self.take_columns(len(self._frozen) - self._stream._position)


class EdgeStream:
    """A single-pass stream of ``(set_id, element)`` edges.

    Parameters
    ----------
    instance:
        The underlying set-cover instance.
    edges:
        The ordered edge sequence to present; callers usually obtain it
        by applying an :class:`~repro.streaming.orders.ArrivalOrder` to
        ``instance.edges()``.  A :class:`FrozenEdges` (or a plain tuple)
        is adopted without copying, so replayable harnesses share one
        buffer across every view.
    order_name:
        Label recorded in experiment output.
    declared_length:
        Length ``N`` the stream *claims* to have; defaults to the true
        buffer length.  A mismatching value models hostile or buggy
        producers (fault injection, malformed files); consumers that
        trust :attr:`length` for epoch sizing will be misled, which is
        exactly what robustness tests probe.  :attr:`actual_length`
        always reports the truth.
    """

    def __init__(
        self,
        instance: SetCoverInstance,
        edges: EdgesLike,
        order_name: str = "canonical",
        declared_length: Optional[int] = None,
    ) -> None:
        self.instance = instance
        self._frozen = edges if isinstance(edges, FrozenEdges) else FrozenEdges(edges)
        self.order_name = order_name
        if declared_length is not None and declared_length < 0:
            raise InvalidStreamError(
                f"declared_length must be >= 0, got {declared_length}"
            )
        self._declared_length = declared_length
        self._consumed = False
        self._position = 0
        # Sorted positions at which _on_checkpoint() fires before the
        # edge at that position is consumed.  Subclasses (e.g. the
        # lower-bound boundary prober) populate this; batched takes are
        # clamped so they never cross a pending checkpoint, keeping the
        # hook's view of consumer state exact.
        self._checkpoints: List[int] = []

    @property
    def length(self) -> int:
        """The stream length N as *declared* (usually the true count)."""
        if self._declared_length is not None:
            return self._declared_length
        return len(self._frozen)

    @property
    def actual_length(self) -> int:
        """The number of edges the buffer genuinely holds."""
        return len(self._frozen)

    @property
    def position(self) -> int:
        """Number of edges already yielded."""
        return self._position

    @property
    def consumed(self) -> bool:
        """Whether iteration has started (one-pass guard)."""
        return self._consumed

    def _start_pass(self) -> None:
        if self._consumed:
            raise StreamExhaustedError(
                "edge stream already consumed; one-pass algorithms may not "
                "re-read the stream (use ReplayableStream in harnesses)"
            )
        self._consumed = True

    def __iter__(self) -> Iterator[Edge]:
        self._start_pass()
        return self._generate()

    def _generate(self) -> Iterator[Edge]:
        if self._checkpoints:
            yield from self._generate_with_checkpoints()
            return
        for edge in self._frozen.edges:
            self._position += 1
            yield edge

    def _generate_with_checkpoints(self) -> Iterator[Edge]:
        checkpoints = self._checkpoints
        for edge in self._frozen.edges:
            while checkpoints and checkpoints[0] == self._position:
                self._on_checkpoint()
                checkpoints.pop(0)
            self._position += 1
            yield edge
        self.flush_checkpoints()

    # -- checkpoint hooks ------------------------------------------------

    def _on_checkpoint(self) -> None:
        """Called when consumption reaches a position in ``_checkpoints``."""

    def flush_checkpoints(self) -> None:
        """Fire checkpoints at or before the consumed position.

        Harnesses call this after the consumer finishes so a checkpoint
        placed exactly at the stream end (e.g. an empty final party in
        the lower-bound reduction) still fires — but only once the
        consumer genuinely reached it.
        """
        checkpoints = self._checkpoints
        while checkpoints and checkpoints[0] <= self._position:
            self._on_checkpoint()
            checkpoints.pop(0)

    def _take_bounds(self, k: int) -> Tuple[int, int]:
        """Resolve a batched take: fire due checkpoints, clamp the stop.

        Returns the half-open ``[start, stop)`` slice the take may
        consume; ``stop`` never crosses a pending checkpoint, so the
        next take fires it only after the consumer has processed every
        earlier edge.
        """
        start = self._position
        stop = min(start + k, len(self._frozen))
        checkpoints = self._checkpoints
        if checkpoints:
            while checkpoints and checkpoints[0] == start:
                self._on_checkpoint()
                checkpoints.pop(0)
            if checkpoints and checkpoints[0] < stop:
                stop = checkpoints[0]
        return start, stop

    def iter_chunks(self, chunk_size: int) -> Iterator[Tuple[Edge, ...]]:
        """One-pass iteration in chunks of up to ``chunk_size`` edges.

        Each chunk is a tuple slice of the shared frozen buffer — batch
        consumers (occurrence counting, witness collection) avoid the
        per-edge generator step entirely.  Subject to the same one-pass
        discipline as :meth:`__iter__`.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._start_pass()
        return self._generate_chunks(chunk_size)

    def _generate_chunks(self, chunk_size: int) -> Iterator[Tuple[Edge, ...]]:
        edges = self._frozen.edges
        total = len(edges)
        while self._position < total:
            start, stop = self._take_bounds(chunk_size)
            self._position = stop
            yield edges[start:stop]
        self.flush_checkpoints()

    def reader(
        self, resume_from: Optional[StreamCheckpoint] = None
    ) -> StreamReader:
        """A batched one-pass cursor over this stream (marks it consumed).

        With ``resume_from``, the cursor restarts at a previously taken
        :class:`StreamCheckpoint` — after verifying the checkpoint was
        taken on *this* buffer shape.  Restoring onto a truncated,
        extended, or length-lying buffer raises
        :class:`~repro.errors.InvalidStreamError` rather than silently
        misaligning the cursor.
        """
        if resume_from is not None:
            resume_from.validate_against(self)
        self._start_pass()
        if resume_from is not None:
            self._position = resume_from.position
        return StreamReader(self)

    def peek_all(self) -> Sequence[Edge]:
        """The full ordered edge list, for verification only.

        Experiment harnesses and tests may inspect the stream; streaming
        algorithms must not (they receive the iterator, not the stream
        object's internals).
        """
        return self._frozen.edges

    def __repr__(self) -> str:
        return (
            f"EdgeStream(N={self.length}, order={self.order_name!r}, "
            f"instance={self.instance!r})"
        )


class ReplayableStream:
    """Factory producing fresh one-pass :class:`EdgeStream` views.

    Freezes one ordered edge sequence so that multiple algorithms can be
    compared on the *identical* stream, each receiving its own one-pass
    view.  The frozen buffer (tuple and numpy columns alike) is shared
    by every view: :meth:`fresh` is O(1) and never copies edges.
    """

    def __init__(
        self,
        instance: SetCoverInstance,
        order: Optional[ArrivalOrder] = None,
    ) -> None:
        self.instance = instance
        order = order if order is not None else CanonicalOrder()
        self.order_name = order.name
        self._frozen = FrozenEdges(order.apply(list(instance.edges())))
        # Column materialization is stream *preparation*, like applying
        # the arrival order above — pay it at freeze time so the first
        # vectorized consumer's measured pass is not billed for it.
        self._frozen.columns()

    @property
    def length(self) -> int:
        """The stream length N."""
        return len(self._frozen)

    def fresh(self) -> EdgeStream:
        """A new, unconsumed one-pass view of the frozen ordering."""
        return EdgeStream(self.instance, self._frozen, order_name=self.order_name)

    def edges(self) -> Sequence[Edge]:
        """The frozen ordered edge sequence (verification only)."""
        return self._frozen.edges

    def __repr__(self) -> str:
        return (
            f"ReplayableStream(N={self.length}, order={self.order_name!r}, "
            f"instance={self.instance!r})"
        )


def stream_of(
    instance: SetCoverInstance,
    order: Optional[ArrivalOrder] = None,
) -> EdgeStream:
    """Build a one-pass stream of ``instance`` under ``order``.

    With ``order=None`` the canonical (set-grouped, deterministic)
    enumeration is streamed.
    """
    order = order if order is not None else CanonicalOrder()
    edges = order.apply(list(instance.edges()))
    return EdgeStream(instance, edges, order_name=order.name)


def concat_streams(first: EdgeStream, second: EdgeStream) -> EdgeStream:
    """Concatenate two unconsumed streams over the same universe.

    Used by the lower-bound reduction, where the last party appends the
    complement set's edges after the shared prefix.  Both inputs must be
    unconsumed; the result is a fresh stream over the combined instance
    of the *first* stream (callers are responsible for id consistency).
    """
    if first.consumed or second.consumed:
        raise StreamExhaustedError("cannot concatenate consumed streams")
    edges = tuple(first.peek_all()) + tuple(second.peek_all())
    return EdgeStream(
        first.instance,
        edges,
        order_name=f"{first.order_name}+{second.order_name}",
    )
