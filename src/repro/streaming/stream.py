"""One-pass edge streams over a set-cover instance.

An :class:`EdgeStream` couples an instance with an arrival order and
enforces the single-pass discipline: once consumed, a stream refuses to
be iterated again (algorithms that accidentally take two passes fail
loudly in tests instead of silently cheating).

Use :func:`stream_of` for the common case, or :class:`ReplayableStream`
in experiment harnesses where several algorithms must see the *same*
ordered stream.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import StreamExhaustedError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import ArrivalOrder, CanonicalOrder
from repro.types import Edge, SeedLike


class EdgeStream:
    """A single-pass stream of ``(set_id, element)`` edges.

    Parameters
    ----------
    instance:
        The underlying set-cover instance.
    edges:
        The ordered edge sequence to present; callers usually obtain it
        by applying an :class:`~repro.streaming.orders.ArrivalOrder` to
        ``instance.edges()``.
    order_name:
        Label recorded in experiment output.
    """

    def __init__(
        self,
        instance: SetCoverInstance,
        edges: Sequence[Edge],
        order_name: str = "canonical",
    ) -> None:
        self.instance = instance
        self._edges = list(edges)
        self.order_name = order_name
        self._consumed = False
        self._position = 0

    @property
    def length(self) -> int:
        """The stream length N (total number of edges)."""
        return len(self._edges)

    @property
    def position(self) -> int:
        """Number of edges already yielded."""
        return self._position

    @property
    def consumed(self) -> bool:
        """Whether iteration has started (one-pass guard)."""
        return self._consumed

    def __iter__(self) -> Iterator[Edge]:
        if self._consumed:
            raise StreamExhaustedError(
                "edge stream already consumed; one-pass algorithms may not "
                "re-read the stream (use ReplayableStream in harnesses)"
            )
        self._consumed = True
        return self._generate()

    def _generate(self) -> Iterator[Edge]:
        for edge in self._edges:
            self._position += 1
            yield edge

    def peek_all(self) -> Sequence[Edge]:
        """The full ordered edge list, for verification only.

        Experiment harnesses and tests may inspect the stream; streaming
        algorithms must not (they receive the iterator, not the stream
        object's internals).
        """
        return tuple(self._edges)

    def __repr__(self) -> str:
        return (
            f"EdgeStream(N={self.length}, order={self.order_name!r}, "
            f"instance={self.instance!r})"
        )


class ReplayableStream:
    """Factory producing fresh one-pass :class:`EdgeStream` views.

    Freezes one ordered edge sequence so that multiple algorithms can be
    compared on the *identical* stream, each receiving its own one-pass
    view.
    """

    def __init__(
        self,
        instance: SetCoverInstance,
        order: Optional[ArrivalOrder] = None,
    ) -> None:
        self.instance = instance
        order = order if order is not None else CanonicalOrder()
        self.order_name = order.name
        self._edges: List[Edge] = order.apply(list(instance.edges()))

    @property
    def length(self) -> int:
        """The stream length N."""
        return len(self._edges)

    def fresh(self) -> EdgeStream:
        """A new, unconsumed one-pass view of the frozen ordering."""
        return EdgeStream(self.instance, self._edges, order_name=self.order_name)

    def edges(self) -> Sequence[Edge]:
        """The frozen ordered edge sequence (verification only)."""
        return tuple(self._edges)

    def __repr__(self) -> str:
        return (
            f"ReplayableStream(N={self.length}, order={self.order_name!r}, "
            f"instance={self.instance!r})"
        )


def stream_of(
    instance: SetCoverInstance,
    order: Optional[ArrivalOrder] = None,
) -> EdgeStream:
    """Build a one-pass stream of ``instance`` under ``order``.

    With ``order=None`` the canonical (set-grouped, deterministic)
    enumeration is streamed.
    """
    order = order if order is not None else CanonicalOrder()
    edges = order.apply(list(instance.edges()))
    return EdgeStream(instance, edges, order_name=order.name)


def concat_streams(first: EdgeStream, second: EdgeStream) -> EdgeStream:
    """Concatenate two unconsumed streams over the same universe.

    Used by the lower-bound reduction, where the last party appends the
    complement set's edges after the shared prefix.  Both inputs must be
    unconsumed; the result is a fresh stream over the combined instance
    of the *first* stream (callers are responsible for id consistency).
    """
    if first.consumed or second.consumed:
        raise StreamExhaustedError("cannot concatenate consumed streams")
    edges = list(first.peek_all()) + list(second.peek_all())
    return EdgeStream(
        first.instance,
        edges,
        order_name=f"{first.order_name}+{second.order_name}",
    )
