"""Streaming substrate: instances, streams, arrival orders, space metering.

This package provides everything the streaming algorithms in
:mod:`repro.core` run on top of:

* :class:`SetCoverInstance` — the static input,
* :class:`EdgeStream` / :class:`ReplayableStream` — one-pass streams,
* arrival-order policies (:mod:`repro.streaming.orders`),
* word-level space accounting (:mod:`repro.streaming.space`),
* bipartite-graph views and I/O helpers.
"""

from repro.streaming.instance import SetCoverInstance, instance_from_edges
from repro.streaming.orders import (
    ORDER_REGISTRY,
    ArrivalOrder,
    CanonicalOrder,
    ExplicitOrder,
    LargeSetsLastOrder,
    LocallyShuffledOrder,
    RandomOrder,
    RoundRobinInterleaveOrder,
    SetGroupedOrder,
    check_permutation,
    make_order,
)
from repro.streaming.space import (
    SpaceBudget,
    SpaceMeter,
    SpaceReport,
    words_for_mapping,
    words_for_set,
)
from repro.streaming.stream import (
    EdgeStream,
    FrozenEdges,
    ReplayableStream,
    StreamCheckpoint,
    StreamReader,
    concat_streams,
    stream_of,
)

__all__ = [
    "SetCoverInstance",
    "instance_from_edges",
    "ArrivalOrder",
    "CanonicalOrder",
    "RandomOrder",
    "SetGroupedOrder",
    "RoundRobinInterleaveOrder",
    "LargeSetsLastOrder",
    "LocallyShuffledOrder",
    "ExplicitOrder",
    "ORDER_REGISTRY",
    "make_order",
    "check_permutation",
    "SpaceMeter",
    "SpaceBudget",
    "SpaceReport",
    "words_for_mapping",
    "words_for_set",
    "EdgeStream",
    "FrozenEdges",
    "StreamCheckpoint",
    "StreamReader",
    "ReplayableStream",
    "stream_of",
    "concat_streams",
]
