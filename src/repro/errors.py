"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-classes are
kept deliberately fine-grained: each maps to a distinct failure mode a
user can act on (bad instance, bad stream, exhausted space budget, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional


@dataclass(frozen=True)
class PartialState:
    """Snapshot of salvageable algorithm state at the moment of failure.

    Attached (as the ``partial`` attribute) to :class:`ReproError`
    instances that escape :meth:`StreamingSetCoverAlgorithm.run`, so a
    ``best_effort`` degradation policy can emit a *partial* cover
    instead of discarding the whole pass.  All fields are copies taken
    at failure time; mutating them cannot affect the failed run.
    """

    cover: FrozenSet[int] = frozenset()
    certificate: Dict[int, int] = field(default_factory=dict)
    edges_consumed: int = 0
    meter_peak: int = 0


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library.

    Instances may carry a :class:`PartialState` snapshot in their
    ``partial`` attribute when raised from inside an algorithm pass;
    it defaults to ``None`` for errors raised outside one.
    """

    partial: Optional[PartialState] = None


class InvalidInstanceError(ReproError):
    """A set-cover instance violates a structural requirement.

    Raised, for example, when an element belongs to no set (the paper
    assumes every element is contained in at least one set, Section 2),
    when ids are out of range, or when a set is empty where that is not
    permitted.
    """


class InvalidStreamError(ReproError):
    """An edge stream is malformed or inconsistent with its instance.

    Examples: duplicate edges where duplicates are forbidden, edges that
    reference unknown sets or elements, or a declared length that does
    not match the number of produced edges.
    """


class InvalidCoverError(ReproError):
    """A produced cover or certificate fails verification."""


class SpaceBudgetExceededError(ReproError):
    """An algorithm exceeded the space budget it was configured with.

    Only raised when a hard :class:`repro.streaming.space.SpaceBudget`
    is attached; by default space is merely *metered*, never enforced.
    """

    def __init__(
        self,
        used: int,
        budget: int,
        context: str = "",
        partial: Optional[PartialState] = None,
    ) -> None:
        self.used = used
        self.budget = budget
        self.context = context
        self.partial = partial
        suffix = f" while {context}" if context else ""
        super().__init__(
            f"space budget exceeded: {used} words used, budget {budget}{suffix}"
        )


class CommBudgetError(ReproError):
    """A distributed run exceeded its communication budget.

    Only raised when a hard :class:`repro.distributed.comm.CommBudget`
    is attached to the coordinator's :class:`~repro.distributed.comm.CommMeter`;
    by default communication is merely *metered*, never enforced.  The
    offending message has already been recorded when the error is
    raised, so the meter's report shows the total that tripped the cap.
    """

    def __init__(
        self,
        used: int,
        budget: int,
        context: str = "",
        link: str = "",
        message_words: int = 0,
    ) -> None:
        self.used = used
        self.budget = budget
        self.context = context
        self.link = link
        self.message_words = message_words
        suffix = f" while {context}" if context else ""
        detail = (
            f" (message of {message_words} words on link {link})" if link else ""
        )
        super().__init__(
            f"communication budget exceeded: {used} words sent, budget "
            f"{budget}{suffix}{detail}"
        )


class TransportError(ReproError):
    """A transport could not move a message between two players.

    Raised by :mod:`repro.distributed.transport` for wire-level
    failures the comm meter never sees: a socket that cannot bind in a
    sandboxed environment, a malformed frame, or a codec that is not
    installed.  Logical (word-level) accounting failures stay
    :class:`CommBudgetError`; this error is strictly about bytes.
    """


class TransportPartitionError(TransportError):
    """A link stayed partitioned past the transport's retransmit budget.

    Carries the link label and how many transmissions were attempted so
    chaos harnesses can assert *which* link failed and that the
    retransmit policy was actually exercised.
    """

    def __init__(self, link: str, attempts: int, context: str = "") -> None:
        self.link = link
        self.attempts = attempts
        self.context = context
        suffix = f" while {context}" if context else ""
        super().__init__(
            f"link {link} dropped all {attempts} transmission(s); "
            f"partition outlasted the retransmit budget{suffix}"
        )


class AdmissionError(ReproError):
    """A serve request was refused or evicted by admission control.

    Raised by :class:`repro.serve.admission.ResourcePool` when a request
    cannot be granted its space/communication lease: it asks for more
    than the pool will ever hold (``reason="exceeds-capacity"``), the
    wait queue is full (``"queue-full"``), the request waited past the
    queue timeout (``"timed-out"``), or the server is draining for
    shutdown (``"shutting-down"``).  The error carries the full
    admission context — requested and available words, current queue
    depth, and an advisory ``retry_after`` hint in seconds (``None``
    when retrying can never succeed) — and round-trips through the
    serve wire protocol, so a *client* catches the same typed error the
    pool raised server-side.
    """

    def __init__(
        self,
        reason: str,
        requested_space_words: int = 0,
        requested_comm_words: int = 0,
        available_space_words: int = 0,
        available_comm_words: int = 0,
        queue_depth: int = 0,
        retry_after: Optional[float] = None,
        context: str = "",
    ) -> None:
        self.reason = reason
        self.requested_space_words = requested_space_words
        self.requested_comm_words = requested_comm_words
        self.available_space_words = available_space_words
        self.available_comm_words = available_comm_words
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self.context = context
        suffix = f" while {context}" if context else ""
        hint = (
            f"; retry after ~{retry_after:.3f}s"
            if retry_after is not None
            else "; retrying cannot succeed"
        )
        super().__init__(
            f"admission refused ({reason}): requested "
            f"{requested_space_words} space + {requested_comm_words} comm "
            f"words, {available_space_words}/{available_comm_words} "
            f"available, queue depth {queue_depth}{suffix}{hint}"
        )


class RemoteServeError(ReproError):
    """A server-side error relayed to a serve client over the wire.

    The serve protocol transports any :class:`ReproError` a request
    handler raises as a ``(type name, message)`` pair; the client
    re-raises it as this class so callers keep a typed error without
    the protocol having to know every subclass constructor.
    :class:`AdmissionError` is the exception: its fields travel
    explicitly and it is reconstructed as itself.
    """

    def __init__(self, error_type: str, message: str) -> None:
        self.error_type = error_type
        self.remote_message = message
        super().__init__(f"{error_type} (remote): {message}")


class StreamExhaustedError(ReproError):
    """An algorithm asked for more stream than exists.

    One-pass algorithms must never re-read the stream; this error guards
    against accidental second passes in tests and experiments.
    """

    def __init__(
        self, message: str = "edge stream exhausted",
        partial: Optional[PartialState] = None,
    ) -> None:
        self.partial = partial
        super().__init__(message)


class ProtocolError(ReproError):
    """A multi-party communication protocol was driven incorrectly.

    Raised for out-of-order message passing, a party speaking twice, or
    a message sent after the protocol produced its output.
    """


class InfeasibleInstanceError(InvalidInstanceError):
    """The instance admits no feasible cover (some element is in no set)."""


class ConfigurationError(ReproError):
    """Mutually inconsistent or out-of-range algorithm parameters."""


class InvalidParameterError(ConfigurationError):
    """A single parameter is out of its documented range or vocabulary.

    The narrow sibling of :class:`ConfigurationError`: raised when one
    argument is wrong in isolation (``max_workers < 1``, an unknown
    backend name, a non-positive queue depth), as opposed to a *set* of
    parameters that are individually fine but mutually inconsistent.
    Subclassing keeps every existing ``except ConfigurationError``
    handler working.
    """

    def __init__(self, parameter: str, value: object, requirement: str) -> None:
        self.parameter = parameter
        self.value = value
        self.requirement = requirement
        super().__init__(
            f"invalid {parameter}={value!r}: {requirement}"
        )


class ShardCrashError(ReproError):
    """A distributed shard crashed and its output was abandoned.

    Raised by the fault-tolerant execution layer
    (:func:`repro.distributed.backends.run_tasks_with_recovery`) when a
    shard's every attempt crashed and the coordinator's quorum policy
    does not permit proceeding without it.  The per-shard
    :class:`~repro.distributed.backends.ShardOutcome` records carry the
    full attempt history.
    """

    def __init__(self, index: int, attempts: int, context: str = "") -> None:
        self.index = index
        self.attempts = attempts
        self.context = context
        suffix = f" ({context})" if context else ""
        super().__init__(
            f"shard[{index}] crashed on all {attempts} attempt(s) and was "
            f"abandoned{suffix}"
        )


class ShardTimeoutError(ReproError):
    """A distributed shard missed its logical-step deadline.

    Raised when a shard's (simulated) completion step exceeds the
    configured ``deadline_steps`` on every attempt — a straggler that
    retry-with-backoff cannot rescue — and the quorum policy does not
    permit proceeding without it.
    """

    def __init__(
        self,
        index: int,
        attempts: int,
        completion_step: int,
        deadline_steps: int,
        context: str = "",
    ) -> None:
        self.index = index
        self.attempts = attempts
        self.completion_step = completion_step
        self.deadline_steps = deadline_steps
        self.context = context
        suffix = f" ({context})" if context else ""
        super().__init__(
            f"shard[{index}] timed out on all {attempts} attempt(s): "
            f"finished at logical step {completion_step} > deadline "
            f"{deadline_steps}{suffix}"
        )


class RunTimeoutError(ReproError):
    """A single experiment run exceeded its wall-clock allowance.

    Raised by :class:`repro.analysis.runner.ExperimentRunner` when a
    per-run ``timeout`` is configured.  Detection is cooperative: the
    run is allowed to finish its pass and is flagged afterwards (Python
    threads cannot be pre-empted), so this bounds sweep time against
    runs that are slow but terminating.
    """

    def __init__(self, context: str, elapsed: float, timeout: float) -> None:
        self.context = context
        self.elapsed = elapsed
        self.timeout = timeout
        super().__init__(
            f"run exceeded timeout: {elapsed:.3f}s > {timeout:.3f}s ({context})"
        )


class ExperimentExecutionError(ReproError):
    """A worker run inside an experiment sweep failed.

    Wraps the underlying exception (available as ``__cause__``) with
    the failing cell's full context — algorithm, arrival order,
    instance, seed, spec index, and how many retry attempts were spent —
    so a failure deep inside a thread pool is attributable without
    digging through a bare pool traceback.
    """

    def __init__(
        self,
        algorithm: str,
        order: str,
        instance: str,
        seed: int,
        spec_index: int,
        attempts: int,
        cause: BaseException,
    ) -> None:
        self.algorithm = algorithm
        self.order = order
        self.instance = instance
        self.seed = seed
        self.spec_index = spec_index
        self.attempts = attempts
        super().__init__(
            f"experiment run failed after {attempts} attempt(s): "
            f"algorithm={algorithm!r} order={order!r} seed={seed} "
            f"spec_index={spec_index} instance={instance}: "
            f"{type(cause).__name__}: {cause}"
        )
