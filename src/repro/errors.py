"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-classes are
kept deliberately fine-grained: each maps to a distinct failure mode a
user can act on (bad instance, bad stream, exhausted space budget, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """A set-cover instance violates a structural requirement.

    Raised, for example, when an element belongs to no set (the paper
    assumes every element is contained in at least one set, Section 2),
    when ids are out of range, or when a set is empty where that is not
    permitted.
    """


class InvalidStreamError(ReproError):
    """An edge stream is malformed or inconsistent with its instance.

    Examples: duplicate edges where duplicates are forbidden, edges that
    reference unknown sets or elements, or a declared length that does
    not match the number of produced edges.
    """


class InvalidCoverError(ReproError):
    """A produced cover or certificate fails verification."""


class SpaceBudgetExceededError(ReproError):
    """An algorithm exceeded the space budget it was configured with.

    Only raised when a hard :class:`repro.streaming.space.SpaceBudget`
    is attached; by default space is merely *metered*, never enforced.
    """

    def __init__(self, used: int, budget: int, context: str = "") -> None:
        self.used = used
        self.budget = budget
        self.context = context
        suffix = f" while {context}" if context else ""
        super().__init__(
            f"space budget exceeded: {used} words used, budget {budget}{suffix}"
        )


class StreamExhaustedError(ReproError):
    """An algorithm asked for more stream than exists.

    One-pass algorithms must never re-read the stream; this error guards
    against accidental second passes in tests and experiments.
    """


class ProtocolError(ReproError):
    """A multi-party communication protocol was driven incorrectly.

    Raised for out-of-order message passing, a party speaking twice, or
    a message sent after the protocol produced its output.
    """


class InfeasibleInstanceError(InvalidInstanceError):
    """The instance admits no feasible cover (some element is in no set)."""


class ConfigurationError(ReproError):
    """Mutually inconsistent or out-of-range algorithm parameters."""
