"""Baseline algorithms: offline greedy variants and trivial streamers."""

from repro.baselines.emek_rosen import SetArrivalThresholdGreedy
from repro.baselines.greedy import greedy_cover, greedy_cover_size
from repro.baselines.lazy_greedy import lazy_greedy_cover
from repro.baselines.store_all import StoreAllAlgorithm
from repro.baselines.trivial import FirstFitAlgorithm, UniformSampleAlgorithm

__all__ = [
    "greedy_cover",
    "greedy_cover_size",
    "lazy_greedy_cover",
    "SetArrivalThresholdGreedy",
    "StoreAllAlgorithm",
    "FirstFitAlgorithm",
    "UniformSampleAlgorithm",
]
