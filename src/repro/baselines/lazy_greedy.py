"""Lazy greedy set cover with a max-heap of stale gains.

The "lazy" (a.k.a. accelerated) greedy of Cormode–Karloff–Wirth [11]
and Lim–Moffat–Wirth [21]: keep sets in a max-heap keyed by a possibly
*stale* gain; on pop, recompute the true gain and re-push unless it is
still the maximum.  Gains only decrease as elements get covered, so the
output is identical to plain greedy while the work drops dramatically
on heavy-tailed inputs — this is the implementation the paper's
"practice" discussion refers to, and the ``practice`` benchmark
compares both.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from repro.core.solution import StreamingResult, certificate_from_cover
from repro.errors import InfeasibleInstanceError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.space import SpaceMeter, words_for_set
from repro.types import ElementId, SetId


def lazy_greedy_cover(instance: SetCoverInstance) -> StreamingResult:
    """Greedy via lazy gain re-evaluation; same output, fewer evaluations."""
    meter = SpaceMeter()
    meter.set_component("input", instance.num_edges)

    uncovered: Set[ElementId] = set(range(instance.n))
    members: Dict[SetId, Set[ElementId]] = {
        s: set(instance.set_members(s)) for s in range(instance.m)
    }
    # Heap of (-stale_gain, set_id); Python's heapq is a min-heap.
    heap: List[Tuple[int, SetId]] = [(-len(mem), s) for s, mem in members.items()]
    heapq.heapify(heap)
    cover: Set[SetId] = set()
    evaluations = 0

    while uncovered:
        if not heap:
            raise InfeasibleInstanceError(
                f"{len(uncovered)} element(s) cannot be covered by any set"
            )
        stale_gain, s = heapq.heappop(heap)
        true_gain = len(members[s] & uncovered)
        evaluations += 1
        if true_gain == 0:
            continue
        if heap and -heap[0][0] > true_gain:
            # Stale entry no longer maximal: refresh and retry.
            heapq.heappush(heap, (-true_gain, s))
            continue
        cover.add(s)
        uncovered -= members[s]
        meter.set_component("cover", words_for_set(len(cover)))

    certificate = certificate_from_cover(instance, frozenset(cover))
    return StreamingResult(
        cover=frozenset(cover),
        certificate=certificate,
        space=meter.report(),
        algorithm="lazy-greedy",
        diagnostics={"gain_evaluations": float(evaluations)},
    )
