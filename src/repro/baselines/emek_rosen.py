"""Set-arrival one-pass Θ(√n)-approximation with Õ(n) space.

The threshold-greedy semi-streaming algorithm in the spirit of
Emek–Rosén [13] (the Table-1 row-1 context: in the *set-arrival* model,
Õ(n) space suffices for a Θ(√n)-approximation — which is exactly what
edge arrival breaks):

* The stream must present each set contiguously (set-arrival = the
  set-grouped special case of edge arrival).
* When a set completes, take it iff it covers ≥ √n still-uncovered
  elements.  At most ``n/√n = √n`` sets are taken this way.
* Remaining elements are patched with their first-seen set; since each
  optimal set, at its arrival, covered < √n of what is still uncovered
  at the end, the residue has ≤ √n·OPT elements, giving ≤ 2√n·OPT sets
  in total.

Space: the uncovered bitmap, the per-element witness, and the current
set's buffer — Õ(n) words, independent of m.  Running this on a
*non-grouped* stream raises: the algorithm is the baseline showing why
edge arrival is a genuinely harder model.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import InvalidStreamError
from repro.obs import events as obs_events
from repro.streaming.space import SpaceBudget, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId


class SetArrivalThresholdGreedy(StreamingSetCoverAlgorithm):
    """One-pass set-arrival threshold greedy (Emek–Rosén style).

    Parameters
    ----------
    threshold:
        Take a completed set iff it covers at least this many uncovered
        elements; ``None`` uses the analysis value ``√n``.
    """

    name = "set-arrival-threshold-greedy"

    def __init__(
        self,
        threshold: Optional[float] = None,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        self._threshold = threshold

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        threshold = self._threshold if self._threshold is not None else math.sqrt(n)
        meter = self._meter

        covered: Set[ElementId] = set()
        cover: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        first_sets = FirstSetStore(meter)
        self._register_salvage(cover=cover, certificate=certificate)
        closed: Set[SetId] = set()

        current_set: Optional[SetId] = None
        buffer: Set[ElementId] = set()
        taken = 0

        def close_current() -> None:
            nonlocal taken
            if current_set is None:
                return
            gain = buffer - covered
            if len(gain) >= threshold:
                cover.add(current_set)
                taken += 1
                self._trace(
                    obs_events.SET_ADMITTED,
                    set_id=current_set,
                    phase="threshold",
                    gain=len(gain),
                )
                for u in gain:
                    covered.add(u)
                    certificate[u] = current_set
                self._trace_count(obs_events.ELEMENT_COVERED, len(gain))
                meter.set_component("cover", words_for_set(len(cover)))
                meter.set_component("covered", words_for_set(len(covered)))
            closed.add(current_set)

        for set_id, element in stream:
            first_sets.observe(set_id, element)
            if set_id != current_set:
                if set_id in closed:
                    raise InvalidStreamError(
                        f"set {set_id} reappeared after closing: the stream is "
                        "not set-grouped; this baseline requires the "
                        "set-arrival model (SetGroupedOrder)"
                    )
                close_current()
                current_set = set_id
                buffer = set()
            buffer.add(element)
            meter.set_component("buffer", words_for_set(len(buffer)))
        close_current()
        meter.set_component("buffer", 0)

        patched = first_sets.patch(certificate, cover, n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        meter.set_component("cover", words_for_set(len(cover)))

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "threshold": float(threshold),
                "taken_by_threshold": float(taken),
                "patched_elements": float(patched),
            },
        )
