"""Trivial streaming baselines: the floor of the quality spectrum.

* :class:`FirstFitAlgorithm` — cover every element with the first set
  seen to contain it.  Space Õ(n), approximation Θ(n) in the worst
  case; this is exactly the paper's patching rule run alone, so every
  paper algorithm's output is at least this good.
* :class:`UniformSampleAlgorithm` — sample sets at a fixed rate up
  front (epoch 0 of Algorithm 1 run alone) and patch the rest.  An
  ablation showing how much of Algorithm 1's quality the later phases
  contribute.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import ConfigurationError
from repro.obs import events as obs_events
from repro.streaming.space import SpaceBudget, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId


class FirstFitAlgorithm(StreamingSetCoverAlgorithm):
    """Cover each element with the first set observed to contain it."""

    name = "first-fit"

    def _run(self, stream: EdgeStream) -> StreamingResult:
        first_sets = FirstSetStore(self._meter)
        self._register_salvage(certificate=first_sets.mapping)
        for set_id, element in stream:
            first_sets.observe(set_id, element)
        certificate: Dict[ElementId, SetId] = {}
        cover: Set[SetId] = set()
        patched = first_sets.patch(certificate, cover, stream.instance.n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        self._meter.set_component("cover", words_for_set(len(cover)))
        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=self._meter.report(),
            algorithm=self.name,
            diagnostics={"patched_elements": float(patched)},
        )


class UniformSampleAlgorithm(StreamingSetCoverAlgorithm):
    """Sample each set up front with probability ``rate``, then patch.

    Sampled sets witness their elements as edges arrive; everything
    else is patched first-fit.  With ``rate = C·√n·log m/m`` this is
    Algorithm 1's epoch 0 in isolation.
    """

    name = "uniform-sample"

    def __init__(
        self,
        rate: float,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate

    def _run(self, stream: EdgeStream) -> StreamingResult:
        m = stream.instance.m
        sampled: Set[SetId] = {
            s for s in range(m) if self._rng.random() < self.rate
        }
        self._meter.set_component("sampled", words_for_set(len(sampled)))
        if self._tracer.enabled:
            for set_id in sorted(sampled):
                self._trace(
                    obs_events.SET_ADMITTED,
                    set_id=set_id,
                    phase="upfront",
                    probability=self.rate,
                )

        certificate: Dict[ElementId, SetId] = {}
        first_sets = FirstSetStore(self._meter)
        self._register_salvage(certificate=certificate)
        for set_id, element in stream:
            first_sets.observe(set_id, element)
            if set_id in sampled and element not in certificate:
                certificate[element] = set_id
                self._trace_count(obs_events.ELEMENT_COVERED)

        cover: Set[SetId] = {certificate[u] for u in certificate}
        patched = first_sets.patch(certificate, cover, stream.instance.n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        self._meter.set_component("cover", words_for_set(len(cover)))
        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=self._meter.report(),
            algorithm=self.name,
            diagnostics={
                "sampled_sets": float(len(sampled)),
                "patched_elements": float(patched),
            },
        )
