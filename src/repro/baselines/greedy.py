"""Offline greedy set cover — the classical (ln n + 1)-approximation.

Greedy repeatedly takes the set covering the most still-uncovered
elements.  It is the gold-standard practical baseline (Section 1.3 of
the paper: "most practical approaches are based on efficient
implementations of the Greedy Set Cover algorithm"), and because
``greedy_size ≥ OPT`` its output doubles as an upper bound on OPT when
exact solving is out of reach.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.solution import StreamingResult, certificate_from_cover
from repro.errors import InfeasibleInstanceError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.space import SpaceMeter, words_for_mapping, words_for_set
from repro.types import ElementId, SetId


def greedy_cover(instance: SetCoverInstance) -> StreamingResult:
    """Run offline greedy; returns a verified-format result.

    Offline algorithms see the whole instance, so the space report
    reflects the full input size — they are baselines for *quality*,
    not space.
    """
    meter = SpaceMeter()
    meter.set_component("input", instance.num_edges)

    uncovered: Set[ElementId] = set(range(instance.n))
    remaining: Dict[SetId, Set[ElementId]] = {
        s: set(instance.set_members(s)) for s in range(instance.m)
    }
    cover: Set[SetId] = set()

    while uncovered:
        best_set, best_gain = -1, 0
        for s, members in remaining.items():
            gain = len(members & uncovered)
            if gain > best_gain:
                best_set, best_gain = s, gain
        if best_gain == 0:
            raise InfeasibleInstanceError(
                f"{len(uncovered)} element(s) cannot be covered by any set"
            )
        cover.add(best_set)
        uncovered -= remaining.pop(best_set)
        meter.set_component("cover", words_for_set(len(cover)))

    certificate = certificate_from_cover(instance, frozenset(cover))
    return StreamingResult(
        cover=frozenset(cover),
        certificate=certificate,
        space=meter.report(),
        algorithm="greedy",
    )


def greedy_cover_size(instance: SetCoverInstance) -> int:
    """Just the greedy cover size (upper bound on OPT)."""
    return greedy_cover(instance).cover_size
