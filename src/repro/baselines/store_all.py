"""Store-everything baseline: buffer the stream, solve offline.

The trivial upper end of the space spectrum: Θ(N) words of space buy
greedy-quality covers regardless of arrival order.  Used as the
quality ceiling and space anti-baseline in the phase-transition
experiment.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.greedy import greedy_cover
from repro.core.base import StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.obs import events as obs_events
from repro.streaming.instance import instance_from_edges
from repro.streaming.space import SpaceBudget
from repro.streaming.stream import EdgeStream
from repro.types import Edge, SeedLike


class StoreAllAlgorithm(StreamingSetCoverAlgorithm):
    """Buffers all edges, then runs offline greedy on the reconstruction."""

    name = "store-all"

    def __init__(
        self,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)

    def _run(self, stream: EdgeStream) -> StreamingResult:
        buffered: List[Edge] = []
        for edge in stream:
            buffered.append(edge)
            self._meter.set_component("buffer", 2 * len(buffered))
        reconstructed = instance_from_edges(
            stream.instance.n, stream.instance.m, buffered, name="buffered"
        )
        with self._tracer.span(
            obs_events.SPAN_OFFLINE, buffered_edges=len(buffered)
        ):
            result = greedy_cover(reconstructed)
            if self._tracer.enabled:
                for set_id in sorted(result.cover):
                    self._trace(
                        obs_events.SET_ADMITTED, set_id=set_id, phase="greedy"
                    )
                self._trace_count(
                    obs_events.ELEMENT_COVERED, len(result.certificate)
                )
        return StreamingResult(
            cover=result.cover,
            certificate=result.certificate,
            space=self._meter.report(),
            algorithm=self.name,
            diagnostics={"buffered_edges": float(len(buffered))},
        )
