"""Graceful degradation policies for streaming set-cover algorithms.

:class:`ResilientAlgorithm` wraps any
:class:`~repro.core.base.StreamingSetCoverAlgorithm` and turns hard
failures on hostile streams into *accounted-for* outcomes.  The global
invariant the chaos harness enforces is:

    every run ends in a **valid cover**, a **typed** :class:`ReproError`,
    or an explicit :class:`DegradationRecord` — never a bare
    ``KeyError``/``IndexError`` and never a silently wrong answer.

Three policies:

``fail_fast``
    Run the algorithm untouched.  Whatever it raises propagates.  This
    is the paper-faithful mode: structural assumptions are trusted.
``skip_bad_edges``
    Sanitize the stream first — edges referencing unknown set/element
    ids (or pairs the instance denies) are dropped, and a mis-declared
    stream length is corrected — then run.  If anything was repaired,
    the (valid) result is paired with a :class:`DegradationRecord`
    stating which invariant was relaxed.  Algorithm errors still
    propagate.
``best_effort``
    ``skip_bad_edges`` sanitization *plus* failure salvage: on any
    :class:`ReproError` (e.g. :class:`SpaceBudgetExceededError`, or the
    patching failure a truncated stream causes) — or a bare
    ``KeyError``/``IndexError``/``ValueError`` escaping an algorithm —
    the partial state attached by the algorithm base class is converted
    into a partial result plus a degradation record instead of raising.

Sanitization is harness-level work: it happens before the algorithm's
pass begins and is *not* charged to the algorithm's space meter, for
the same reason the experiment runner's frozen stream buffers are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.base import StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import ConfigurationError, PartialState, ReproError
from repro.obs import events as obs_events
from repro.streaming.space import SpaceReport
from repro.streaming.stream import EdgeStream
from repro.types import Edge

#: Recognised degradation policies, mildest first.
POLICIES: Tuple[str, ...] = ("fail_fast", "skip_bad_edges", "best_effort")

#: Bare exceptions ``best_effort`` converts into degradation records.
_SALVAGEABLE_BARE = (KeyError, IndexError, ValueError)


@dataclass(frozen=True)
class DegradationRecord:
    """Explicit account of how and why a run fell short of the paper's contract.

    Attributes
    ----------
    policy:
        The policy that produced this record.
    relaxed_invariant:
        Which structural assumption was relaxed — e.g.
        ``"well-formed-edges"`` (unknown ids skipped),
        ``"declared-length"`` (length lie corrected), or
        ``"complete-cover"`` (a failure was salvaged into a partial
        cover).
    edges_skipped:
        Malformed edges dropped by sanitization.
    coverage_fraction:
        Fraction of the universe the emitted cover genuinely covers
        (1.0 for a repaired-but-complete run).
    uncovered_count:
        Elements the emitted cover misses.
    error_type, error_message:
        The failure that was salvaged, if any (empty for pure repairs).
    edges_consumed:
        Stream position reached before the failure (full length for
        repairs).
    meter_peak:
        Peak words the algorithm had charged when it stopped.
    """

    policy: str
    relaxed_invariant: str
    edges_skipped: int = 0
    coverage_fraction: float = 1.0
    uncovered_count: int = 0
    error_type: str = ""
    error_message: str = ""
    edges_consumed: int = 0
    meter_peak: int = 0
    details: Dict[str, float] = field(default_factory=dict)


@dataclass
class ResilientResult:
    """Outcome of a resilient run: a result, a degradation record, or both.

    ``result is not None and degradation is None``  — clean, full cover.
    ``result is not None and degradation is not None`` — usable cover,
    but an invariant was relaxed (repair) or the cover is partial
    (salvage; check ``degradation.coverage_fraction``).
    ``result is None`` — nothing salvageable; ``degradation`` says why.
    """

    algorithm: str
    policy: str
    result: Optional[StreamingResult] = None
    degradation: Optional[DegradationRecord] = None

    @property
    def ok(self) -> bool:
        """True iff the run completed with no invariant relaxed."""
        return self.result is not None and self.degradation is None


class ResilientAlgorithm:
    """Run a wrapped algorithm under a graceful-degradation policy."""

    def __init__(
        self,
        algorithm: StreamingSetCoverAlgorithm,
        policy: str = "fail_fast",
    ) -> None:
        if policy not in POLICIES:
            known = ", ".join(POLICIES)
            raise ConfigurationError(
                f"unknown degradation policy {policy!r}; known: {known}"
            )
        self.algorithm = algorithm
        self.policy = policy

    @property
    def name(self) -> str:
        return f"resilient[{self.policy}]({self.algorithm.name})"

    def run(self, stream: EdgeStream) -> ResilientResult:
        """One pass under the configured policy."""
        if self.policy == "fail_fast":
            result = self.algorithm.run(stream)
            return ResilientResult(
                algorithm=self.algorithm.name, policy=self.policy, result=result
            )

        sanitized, skipped, length_lied = _sanitize(stream)
        repairs = []
        if skipped:
            repairs.append("well-formed-edges")
        if length_lied:
            repairs.append("declared-length")
        tracer = self.algorithm.tracer
        if tracer.enabled and (skipped or length_lied):
            tracer.event(
                obs_events.STREAM_SANITIZED,
                policy=self.policy,
                edges_skipped=skipped,
                length_lied=length_lied,
            )

        if self.policy == "skip_bad_edges":
            result = self.algorithm.run(sanitized)
            return self._finish(stream, result, skipped, repairs)

        # best_effort
        try:
            result = self.algorithm.run(sanitized)
        except ReproError as error:
            return self._salvage(
                stream, sanitized, error, error.partial, skipped, repairs
            )
        except _SALVAGEABLE_BARE as error:
            return self._salvage(
                stream, sanitized, error, getattr(error, "partial", None),
                skipped, repairs,
            )
        return self._finish(stream, result, skipped, repairs)

    # -- internals -------------------------------------------------------

    def _trace_degradation(self, record: DegradationRecord) -> None:
        """Mirror ``record`` into the wrapped algorithm's trace."""
        tracer = self.algorithm.tracer
        if tracer.enabled:
            tracer.event(
                obs_events.DEGRADATION,
                policy=record.policy,
                relaxed_invariant=record.relaxed_invariant,
                edges_skipped=record.edges_skipped,
                coverage_fraction=record.coverage_fraction,
                uncovered_count=record.uncovered_count,
                error_type=record.error_type,
            )

    def _finish(
        self,
        stream: EdgeStream,
        result: StreamingResult,
        skipped: int,
        repairs: list,
    ) -> ResilientResult:
        degradation = None
        if repairs:
            degradation = DegradationRecord(
                policy=self.policy,
                relaxed_invariant="+".join(repairs),
                edges_skipped=skipped,
                coverage_fraction=1.0,
                uncovered_count=0,
                edges_consumed=stream.actual_length,
                meter_peak=result.space.peak_words,
            )
            self._trace_degradation(degradation)
        return ResilientResult(
            algorithm=self.algorithm.name,
            policy=self.policy,
            result=result,
            degradation=degradation,
        )

    def _salvage(
        self,
        stream: EdgeStream,
        sanitized: EdgeStream,
        error: BaseException,
        partial: Optional[PartialState],
        skipped: int,
        repairs: list,
    ) -> ResilientResult:
        instance = stream.instance
        n = instance.n
        partial = partial if partial is not None else PartialState()
        # Only in-range sets can contribute coverage; anything else in a
        # salvaged cover would crash the ground-truth union.
        safe_cover = frozenset(
            s for s in partial.cover if 0 <= s < instance.m
        )
        covered = instance.coverage_of(safe_cover)
        coverage_fraction = len(covered) / n if n else 1.0
        safe_certificate = {
            u: s
            for u, s in partial.certificate.items()
            if 0 <= u < n and s in safe_cover and instance.contains(s, u)
        }
        degradation = DegradationRecord(
            policy=self.policy,
            relaxed_invariant="+".join(repairs + ["complete-cover"]),
            edges_skipped=skipped,
            coverage_fraction=coverage_fraction,
            uncovered_count=n - len(covered),
            error_type=type(error).__name__,
            error_message=str(error),
            edges_consumed=partial.edges_consumed or sanitized.position,
            meter_peak=partial.meter_peak,
        )
        self._trace_degradation(degradation)
        result = None
        if safe_cover or safe_certificate:
            # A synthetic report: the meter object died with the run, so
            # the salvaged result carries the recorded peak only.
            result = StreamingResult(
                cover=safe_cover,
                certificate=safe_certificate,
                space=SpaceReport(
                    peak_words=partial.meter_peak,
                    final_words=partial.meter_peak,
                ),
                algorithm=self.algorithm.name,
                diagnostics={"salvaged": 1.0},
            )
        return ResilientResult(
            algorithm=self.algorithm.name,
            policy=self.policy,
            result=result,
            degradation=degradation,
        )


def _sanitize(stream: EdgeStream) -> Tuple[EdgeStream, int, bool]:
    """Drop malformed edges and correct a mis-declared length.

    Returns ``(clean_stream, edges_skipped, length_lied)``.  The input
    stream's pass is spent here; the sanitized stream is the only live
    one-pass view afterwards.
    """
    instance = stream.instance
    n, m = instance.n, instance.m
    length_lied = stream.length != stream.actual_length
    edges = stream.peek_all()
    stream.reader()  # spend the source's single pass
    kept = []
    skipped = 0
    for edge in edges:
        set_id, element = edge
        if 0 <= set_id < m and 0 <= element < n and instance.contains(set_id, element):
            kept.append(edge if isinstance(edge, Edge) else Edge(set_id, element))
        else:
            skipped += 1
    if not skipped and not length_lied:
        clean = EdgeStream(instance, edges, order_name=stream.order_name)
    else:
        clean = EdgeStream(
            instance, tuple(kept), order_name=f"{stream.order_name}+sanitized"
        )
    return clean, skipped, length_lied
