"""Fault injection and graceful degradation.

Two halves:

* :mod:`repro.faults.injectors` — seeded, composable stream perturbation
  (:class:`FaultSpec`, :class:`FaultyStream`, :func:`inject`);
* :mod:`repro.faults.resilient` — degradation policies turning hard
  failures into accounted-for outcomes (:class:`ResilientAlgorithm`,
  :class:`DegradationRecord`).

The chaos harness in :mod:`repro.analysis.chaos` drives both to assert
the global robustness invariant: *valid cover, typed error, or explicit
degradation record — never a bare crash or a silent wrong answer.*
"""

from repro.faults.injectors import (
    FAULT_KINDS,
    FaultSpec,
    FaultyStream,
    InjectionReport,
    apply_faults,
    fault_plan,
    inject,
)
from repro.faults.resilient import (
    POLICIES,
    DegradationRecord,
    ResilientAlgorithm,
    ResilientResult,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultyStream",
    "InjectionReport",
    "apply_faults",
    "fault_plan",
    "inject",
    "POLICIES",
    "DegradationRecord",
    "ResilientAlgorithm",
    "ResilientResult",
]
