"""Fault injection and graceful degradation.

Three layers:

* :mod:`repro.faults.injectors` — seeded, composable stream perturbation
  (:class:`FaultSpec`, :class:`FaultyStream`, :func:`inject`);
* :mod:`repro.faults.resilient` — degradation policies turning hard
  failures into accounted-for outcomes (:class:`ResilientAlgorithm`,
  :class:`DegradationRecord`);
* :mod:`repro.faults.shards` — *machine*-level faults for distributed
  runs (:class:`ShardFaultSpec`, :class:`ShardFaultPlan`): crashes,
  stragglers, and duplicate envelope delivery, consumed by the
  fault-tolerant execution layer and the async delivery simulator.

The chaos harness in :mod:`repro.analysis.chaos` drives both to assert
the global robustness invariant: *valid cover, typed error, or explicit
degradation record — never a bare crash or a silent wrong answer.*
"""

from repro.faults.injectors import (
    FAULT_KINDS,
    FaultSpec,
    FaultyStream,
    InjectionReport,
    apply_faults,
    fault_plan,
    inject,
)
from repro.faults.resilient import (
    POLICIES,
    DegradationRecord,
    ResilientAlgorithm,
    ResilientResult,
)
from repro.faults.shards import (
    SHARD_FAULT_KINDS,
    ShardFaultPlan,
    ShardFaultSpec,
)

__all__ = [
    "SHARD_FAULT_KINDS",
    "ShardFaultPlan",
    "ShardFaultSpec",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultyStream",
    "InjectionReport",
    "apply_faults",
    "fault_plan",
    "inject",
    "POLICIES",
    "DegradationRecord",
    "ResilientAlgorithm",
    "ResilientResult",
]
