"""Composable, seeded fault injection for edge streams.

Each fault models a concrete way a real producer can violate the
paper's structural assumptions (Section 2: every element covered, exact
stream length known, well-formed ``(set, element)`` ids):

============  ==========================================================
kind          effect on the stream
============  ==========================================================
``drop``      each edge is independently deleted with probability *rate*
``duplicate`` each edge is independently emitted twice with prob. *rate*
``corrupt``   each edge is independently replaced, with prob. *rate*, by
              an edge referencing an *unknown* set id (``>= m``) or an
              unknown element id (``>= n``)
``truncate``  the final ``rate`` fraction of the stream never arrives
``reorder``   edges are shuffled within consecutive windows spanning a
              ``rate`` fraction of the stream (local reordering — the
              perturbation that separates random-order from adversarial
              guarantees)
``lie-length`` edges are untouched but the stream *declares* a length
              inflated by a ``rate`` fraction (epoch-boundary sizing is
              misled; strict consumers can detect the lie)
============  ==========================================================

Injection is **reproducible** — every :class:`FaultSpec` carries its own
seed and perturbation happens once, up front, on the frozen edge buffer
— and **space-isolated**: the injector charges its working buffer to a
*private* :class:`~repro.streaming.space.SpaceMeter` recorded on the
:class:`InjectionReport`, so the algorithm under test reports exactly
the :class:`SpaceReport` it would on a clean stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.space import SpaceMeter, SpaceReport
from repro.streaming.stream import EdgeStream, FrozenEdges
from repro.types import Edge, SeedLike, make_rng

#: Every fault kind :func:`apply_faults` understands, in canonical order.
FAULT_KINDS: Tuple[str, ...] = (
    "drop",
    "duplicate",
    "corrupt",
    "truncate",
    "reorder",
    "lie-length",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: a kind, an intensity, and its own seed."""

    kind: str
    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known kinds: {known}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )


@dataclass
class InjectionReport:
    """What a fault pipeline actually did to a stream.

    ``counts`` maps each applied fault kind to the number of edges it
    touched; ``space`` is the injector's own (isolated) space report so
    harnesses can audit that injection cost was never charged to the
    algorithm under test.
    """

    original_length: int
    final_length: int
    declared_length: int
    counts: Dict[str, int] = field(default_factory=dict)
    space: Optional[SpaceReport] = None

    @property
    def lies_about_length(self) -> bool:
        """Whether the stream's declared N differs from the truth."""
        return self.declared_length != self.final_length


def _apply_one(
    edges: List[Edge],
    spec: FaultSpec,
    n: int,
    m: int,
    declared: Optional[int],
    report: InjectionReport,
) -> Tuple[List[Edge], Optional[int]]:
    rng = make_rng(spec.seed)
    rate = spec.rate
    touched = 0
    if spec.kind == "drop":
        kept: List[Edge] = []
        for edge in edges:
            if rng.random() < rate:
                touched += 1
            else:
                kept.append(edge)
        edges = kept
    elif spec.kind == "duplicate":
        doubled: List[Edge] = []
        for edge in edges:
            doubled.append(edge)
            if rng.random() < rate:
                doubled.append(edge)
                touched += 1
        edges = doubled
    elif spec.kind == "corrupt":
        corrupted: List[Edge] = []
        for edge in edges:
            if rng.random() < rate:
                touched += 1
                if rng.random() < 0.5:
                    # Unknown set id: outside range(m).
                    corrupted.append(Edge(m + rng.randrange(1, m + 2), edge.element))
                else:
                    # Unknown element id: outside range(n).
                    corrupted.append(Edge(edge.set_id, n + rng.randrange(1, n + 2)))
            else:
                corrupted.append(edge)
        edges = corrupted
    elif spec.kind == "truncate":
        keep = len(edges) - int(rate * len(edges))
        touched = len(edges) - keep
        edges = edges[:keep]
    elif spec.kind == "reorder":
        window = max(2, int(rate * len(edges)))
        shuffled: List[Edge] = []
        for start in range(0, len(edges), window):
            chunk = edges[start : start + window]
            rng.shuffle(chunk)
            shuffled.extend(chunk)
        touched = len(edges)
        edges = shuffled
    elif spec.kind == "lie-length":
        base = len(edges) if declared is None else declared
        declared = base + max(1, int(rate * max(1, base)))
        touched = 1
    report.counts[spec.kind] = report.counts.get(spec.kind, 0) + touched
    return edges, declared


def apply_faults(
    edges: Sequence[Edge],
    n: int,
    m: int,
    faults: Sequence[FaultSpec],
) -> Tuple[Tuple[Edge, ...], Optional[int], InjectionReport]:
    """Run ``edges`` through the fault pipeline, in order.

    Returns the perturbed edge tuple, the declared length (``None``
    when the stream remains honest about N), and an
    :class:`InjectionReport`.  Deterministic: each spec's perturbation
    is driven solely by its own seed.
    """
    meter = SpaceMeter()
    report = InjectionReport(
        original_length=len(edges),
        final_length=len(edges),
        declared_length=len(edges),
    )
    working = list(edges)
    declared: Optional[int] = None
    # The injector's working buffer is the only state it holds; charge
    # it to the private meter so the cost is auditable yet invisible to
    # the algorithm's own SpaceReport.
    meter.set_component("fault-injector-buffer", 2 * len(working))
    for spec in faults:
        working, declared = _apply_one(working, spec, n, m, declared, report)
        meter.set_component("fault-injector-buffer", 2 * len(working))
    report.final_length = len(working)
    report.declared_length = declared if declared is not None else len(working)
    meter.set_component("fault-injector-buffer", 0)
    report.space = meter.report()
    return tuple(working), declared, report


class FaultyStream(EdgeStream):
    """A one-pass edge stream with faults injected up front.

    Behaves exactly like :class:`EdgeStream` — same reader / chunk /
    iterator protocol, same one-pass discipline — over the perturbed
    ordering.  The :attr:`injection` report records what was done.
    """

    def __init__(
        self,
        instance: SetCoverInstance,
        edges: Sequence[Edge],
        faults: Sequence[FaultSpec],
        order_name: str = "canonical",
    ) -> None:
        perturbed, declared, report = apply_faults(
            edges, instance.n, instance.m, faults
        )
        super().__init__(
            instance,
            FrozenEdges(perturbed),
            order_name=f"{order_name}+faults",
            declared_length=declared,
        )
        self.injection = report
        self.faults = tuple(faults)


def inject(stream: EdgeStream, faults: Sequence[FaultSpec]) -> FaultyStream:
    """Wrap an *unconsumed* stream with a fault pipeline.

    The input stream is marked consumed (its ordering has been read),
    so the faulty view is the only live pass — the one-pass discipline
    carries over to the perturbed stream.
    """
    edges = stream.peek_all()
    stream.reader()  # mark the source consumed; its pass is spent here
    return FaultyStream(
        stream.instance, edges, faults, order_name=stream.order_name
    )


def fault_plan(
    kinds: Sequence[str], rate: float, seed: SeedLike = 0
) -> List[FaultSpec]:
    """Build one :class:`FaultSpec` per kind with derived per-kind seeds."""
    rng = make_rng(seed)
    return [
        FaultSpec(kind=kind, rate=rate, seed=rng.getrandbits(63))
        for kind in kinds
    ]
