"""Shard-level infrastructure faults: crashes, stragglers, duplicates.

:mod:`repro.faults.injectors` perturbs the *data* a shard sees; this
module perturbs the *machines*.  A :class:`ShardFaultSpec` describes
what goes wrong with one shard's execution and delivery —

``crash``
    The shard's first ``crash_attempts`` execution attempts raise
    :class:`~repro.errors.ShardCrashError`.  A transient crash
    (``crash_attempts=1``) is healed by one retry; a permanent crash
    (``crash_attempts >= max_attempts``) abandons the shard.
``straggle``
    Every attempt takes ``straggle_steps`` extra logical steps.  With a
    ``deadline_steps`` policy attached a persistent straggler times out
    on every attempt and is abandoned.
``duplicate``
    The shard's envelope is delivered twice through the asynchronous
    scheduler.  Consumers must be idempotent — duplicate deliveries are
    deduplicated by shard index and must not change the merge.

A :class:`ShardFaultPlan` maps shard indices to specs.  Plans are built
either explicitly (tests pinning a scenario) or via :meth:`seeded`,
which draws each shard's afflictions independently from one seeded RNG
— the same discipline as :class:`~repro.faults.injectors.FaultSpec`, so
a failing chaos cell reproduces from its seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.types import SeedLike, make_rng

#: Shard-fault vocabulary, mirroring the stream-fault ``FAULT_KINDS``.
SHARD_FAULT_KINDS: Tuple[str, ...] = ("crash", "straggle", "duplicate")

#: ``crash_attempts`` value meaning "crashes on every attempt".
PERMANENT = 1 << 30


@dataclass(frozen=True)
class ShardFaultSpec:
    """What goes wrong with one shard's execution and delivery."""

    crash_attempts: int = 0
    straggle_steps: int = 0
    duplicate: bool = False

    def __post_init__(self) -> None:
        if self.crash_attempts < 0:
            raise ConfigurationError(
                f"crash_attempts must be >= 0, got {self.crash_attempts}"
            )
        if self.straggle_steps < 0:
            raise ConfigurationError(
                f"straggle_steps must be >= 0, got {self.straggle_steps}"
            )

    @property
    def is_clean(self) -> bool:
        """True iff this spec injects nothing."""
        return (
            self.crash_attempts == 0
            and self.straggle_steps == 0
            and not self.duplicate
        )


_CLEAN = ShardFaultSpec()


class ShardFaultPlan:
    """Per-shard fault assignment for one distributed run."""

    def __init__(self, specs: Mapping[int, ShardFaultSpec] = ()) -> None:
        self._specs: Dict[int, ShardFaultSpec] = {
            int(index): spec
            for index, spec in dict(specs).items()
            if not spec.is_clean
        }

    def spec_for(self, index: int) -> ShardFaultSpec:
        """The spec afflicting shard ``index`` (clean by default)."""
        return self._specs.get(index, _CLEAN)

    def faulty_shards(self) -> Tuple[int, ...]:
        """Indices carrying a non-clean spec, ascending."""
        return tuple(sorted(self._specs))

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._specs))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{index}:{self._specs[index]!r}" for index in sorted(self._specs)
        )
        return f"ShardFaultPlan({{{parts}}})"

    @classmethod
    def seeded(
        cls,
        workers: int,
        seed: SeedLike = 0,
        crash_rate: float = 0.0,
        flaky_rate: float = 0.0,
        straggle_rate: float = 0.0,
        straggle_steps: int = 3,
        duplicate_rate: float = 0.0,
    ) -> "ShardFaultPlan":
        """Draw each shard's afflictions from one seeded RNG.

        ``crash_rate`` afflicts a shard with a *permanent* crash (every
        attempt fails); ``flaky_rate`` with a *transient* one (only the
        first attempt fails, so one retry heals it).  Draws happen in
        shard-index order with one draw per rate whether or not it
        fires, so changing one rate never reshuffles another's picks.
        """
        if workers < 1:
            raise ConfigurationError(f"need at least 1 worker, got {workers}")
        for name, rate in (
            ("crash_rate", crash_rate),
            ("flaky_rate", flaky_rate),
            ("straggle_rate", straggle_rate),
            ("duplicate_rate", duplicate_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        rng = make_rng(seed)
        specs: Dict[int, ShardFaultSpec] = {}
        for index in range(workers):
            crash_draw = rng.random()
            flaky_draw = rng.random()
            straggle_draw = rng.random()
            duplicate_draw = rng.random()
            crash_attempts = 0
            if crash_draw < crash_rate:
                crash_attempts = PERMANENT
            elif flaky_draw < flaky_rate:
                crash_attempts = 1
            spec = ShardFaultSpec(
                crash_attempts=crash_attempts,
                straggle_steps=(
                    straggle_steps if straggle_draw < straggle_rate else 0
                ),
                duplicate=duplicate_draw < duplicate_rate,
            )
            if not spec.is_clean:
                specs[index] = spec
        return cls(specs)
